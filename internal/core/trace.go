package core

// Event tracing: an optional per-runtime hook recording every executed work
// item as a TraceRecord. Tracing gives the causal event-stream view that
// component testing and distributed debugging lean on (KompicsTesting
// inspects exactly these streams): which component handled which event on
// which port, when, and for how long. The hook is a plain interface field
// checked for nil once per executed event, so a runtime without a sink pays
// a single predictable branch; timestamps come from the runtime clock, so
// traces carry virtual time under simulation and wall time in production.

import (
	"fmt"
	"reflect"
	"sync/atomic"
	"time"
)

// TraceRecord describes one executed work item: one event delivered to one
// component, with every matched handler run back-to-back.
type TraceRecord struct {
	// Seq is a total order over records (assigned by TraceRing; custom
	// sinks may assign their own). Under the deterministic simulation
	// scheduler it is the causal execution order.
	Seq uint64
	// At is the runtime-clock time execution started (virtual time under
	// simulation).
	At time.Time
	// Duration is how long the handlers ran (zero under virtual time
	// unless the handlers advance the clock).
	Duration time.Duration
	// Component is the component that executed the event.
	Component *Component
	// Port is the port half the event crossed into, nil for events
	// enqueued without a port (lifecycle interceptions during swap).
	Port *Port
	// Event is the dynamic type of the executed event.
	Event reflect.Type
	// Handler names the first matched handler ("" when the event was an
	// owner-lifecycle delivery with no subscribed handler).
	Handler string
	// Handlers is the number of matched handlers executed.
	Handlers int
}

// String renders the record for debug dumps.
func (r TraceRecord) String() string {
	comp := "<nil>"
	if r.Component != nil {
		comp = r.Component.Path()
	}
	port := "-"
	if r.Port != nil {
		port = r.Port.Type().Name()
	}
	return fmt.Sprintf("#%d %s %s port=%s event=%s handlers=%d dur=%s",
		r.Seq, r.At.Format("15:04:05.000000"), comp, port, r.Event, r.Handlers, r.Duration)
}

// TraceSink receives one record per executed work item. Record is called
// from scheduler workers concurrently (or from the single simulation
// goroutine, in deterministic order); implementations must be safe for
// concurrent use and must not block — they run on the dispatch path.
type TraceSink interface {
	Record(TraceRecord)
}

// TraceRing is the standard TraceSink: a fixed-capacity lock-free ring that
// keeps the most recent records. Writers claim slots with one atomic
// fetch-add and publish each record with one atomic pointer store, so
// concurrent workers never serialize on a lock; when the ring wraps, the
// oldest records are overwritten. Snapshot reads are wait-free and may run
// concurrently with writers.
type TraceRing struct {
	mask  uint64
	next  atomic.Uint64
	slots []atomic.Pointer[TraceRecord]
}

// NewTraceRing creates a ring holding the most recent capacity records
// (rounded up to a power of two, minimum 16).
func NewTraceRing(capacity int) *TraceRing {
	n := 16
	for n < capacity {
		n <<= 1
	}
	return &TraceRing{mask: uint64(n - 1), slots: make([]atomic.Pointer[TraceRecord], n)}
}

var _ TraceSink = (*TraceRing)(nil)

// Record implements TraceSink. It allocates one small record; metrics
// counters never allocate, but tracing trades one allocation per event for
// race-free concurrent snapshots (records are immutable once published).
func (r *TraceRing) Record(rec TraceRecord) {
	i := r.next.Add(1) - 1
	rec.Seq = i
	r.slots[i&r.mask].Store(&rec)
}

// Recorded returns the total number of records ever written (not the
// current ring occupancy; see Len).
func (r *TraceRing) Recorded() uint64 { return r.next.Load() }

// Cap returns the ring capacity.
func (r *TraceRing) Cap() int { return len(r.slots) }

// Len returns the current number of retained records.
func (r *TraceRing) Len() int {
	n := r.next.Load()
	if n > uint64(len(r.slots)) {
		return len(r.slots)
	}
	return int(n)
}

// Snapshot returns the retained records, oldest first. Records written
// concurrently with the snapshot may or may not be included; each returned
// record is internally consistent (published with a single pointer store).
// Lapped slots (overwritten while reading) surface as the newer record;
// the result is therefore sorted by Seq before returning.
func (r *TraceRing) Snapshot() []TraceRecord {
	hi := r.next.Load()
	lo := uint64(0)
	if hi > uint64(len(r.slots)) {
		lo = hi - uint64(len(r.slots))
	}
	out := make([]TraceRecord, 0, hi-lo)
	for i := lo; i < hi; i++ {
		if p := r.slots[i&r.mask].Load(); p != nil {
			out = append(out, *p)
		}
	}
	sortTrace(out)
	return out
}

// sortTrace orders records by Seq (insertion sort: snapshots are nearly
// sorted already, only lapped slots are out of place).
func sortTrace(recs []TraceRecord) {
	for i := 1; i < len(recs); i++ {
		for j := i; j > 0 && recs[j].Seq < recs[j-1].Seq; j-- {
			recs[j], recs[j-1] = recs[j-1], recs[j]
		}
	}
}
