package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// crashable answers pings but panics on a poison value; carries a counter
// across restarts via state transfer.
type crashable struct {
	mu      sync.Mutex
	handled int
	label   string
}

var errPoison = errors.New("poison")

func (c *crashable) Setup(ctx *Ctx) {
	p := ctx.Provides(pingPongPort)
	Subscribe(ctx, p, func(m ping) {
		if m.N < 0 {
			panic(errPoison)
		}
		c.mu.Lock()
		c.handled++
		n := c.handled
		c.mu.Unlock()
		ctx.Trigger(pong{N: n}, p)
	})
}

func (c *crashable) DumpState() any {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.handled
}

func (c *crashable) LoadState(state any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.handled = state.(int)
}

// supWorld wires a supervisor with one crashable child to a collector.
type supWorld struct {
	rt   *Runtime
	sup  *Supervisor
	col  *collector
	gens chan int
}

func newSupWorld(t *testing.T, policy RestartPolicy, faultPolicy FaultPolicy) *supWorld {
	t.Helper()
	w := &supWorld{gens: make(chan int, 16)}
	w.sup = NewSupervisor(policy, ChildSpec{
		Name:    "worker",
		Factory: func() Definition { return &crashable{} },
	})
	w.sup.onSwap = func(name string, gen int) { w.gens <- gen }
	w.col = &collector{}
	w.rt = New(
		WithScheduler(NewWorkStealingScheduler(2)),
		WithFaultPolicy(faultPolicy),
	)
	t.Cleanup(w.rt.Shutdown)
	w.rt.MustBootstrap("Main", SetupFunc(func(ctx *Ctx) {
		supC := ctx.Create("sup", w.sup)
		colC := ctx.Create("col", w.col)
		ctx.Connect(supC.Children()[0].Provided(pingPongPort), colC.Required(pingPongPort))
	}))
	waitQuiet(t, w.rt)
	return w
}

func (w *supWorld) waitGeneration(t *testing.T, gen int) {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for {
		select {
		case g := <-w.gens:
			if g >= gen {
				return
			}
		case <-deadline:
			t.Fatalf("generation %d never reached", gen)
		}
	}
}

func TestSupervisorRestartsFaultyChild(t *testing.T) {
	w := newSupWorld(t, RestartPolicy{MaxRestarts: 5, Window: time.Minute}, LogAndContinue)

	// Healthy traffic, then poison, then more traffic: the restarted child
	// must continue serving on the same wiring with transferred state.
	w.col.ctx.Trigger(ping{N: 1}, w.col.port)
	w.col.ctx.Trigger(ping{N: 2}, w.col.port)
	waitQuiet(t, w.rt)
	w.col.ctx.Trigger(ping{N: -1}, w.col.port) // poison → fault → restart
	w.waitGeneration(t, 1)
	waitQuiet(t, w.rt)
	w.col.ctx.Trigger(ping{N: 3}, w.col.port)
	waitQuiet(t, w.rt)

	got := w.col.snapshot()
	if len(got) != 3 {
		t.Fatalf("replies %v, want 3 (poison dropped, service restored)", got)
	}
	// State transferred: the counter continues at 3, not 1.
	if got[2] != 3 {
		t.Fatalf("restarted child lost state: replies %v", got)
	}
	if w.sup.Generation("worker") != 1 {
		t.Fatalf("generation %d, want 1", w.sup.Generation("worker"))
	}
	if w.sup.Child("worker") == nil || w.sup.Child("worker").IsDestroyed() {
		t.Fatalf("child handle not updated")
	}
}

func TestSupervisorRestartBudgetEscalates(t *testing.T) {
	var escalated atomic.Int64
	w := newSupWorld(t,
		RestartPolicy{MaxRestarts: 2, Window: time.Minute},
		func(rt *Runtime, f Fault) { escalated.Add(1) },
	)

	for i := 0; i < 2; i++ {
		w.col.ctx.Trigger(ping{N: -1}, w.col.port)
		w.waitGeneration(t, i+1)
		waitQuiet(t, w.rt)
	}
	if escalated.Load() != 0 {
		t.Fatalf("escalated before budget exhausted")
	}
	// Third fault within the window: budget exhausted → escalate to the
	// runtime policy (no ancestor handles Fault).
	w.col.ctx.Trigger(ping{N: -1}, w.col.port)
	deadline := time.Now().Add(10 * time.Second)
	for escalated.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if escalated.Load() != 1 {
		t.Fatalf("budget-exhausted fault not escalated")
	}
	if w.sup.Generation("worker") != 2 {
		t.Fatalf("generation %d, want 2 (no restart after budget)", w.sup.Generation("worker"))
	}
}

// TestSupervisorInjectedClockSlidesWindow pins that the restart budget is
// measured against the injected Clock: faults that exhaust the budget at
// one instant are forgiven once the (fake) clock moves past the window, so
// budget expiry is testable deterministically, with no sleeping.
func TestSupervisorInjectedClockSlidesWindow(t *testing.T) {
	var fake atomic.Int64 // unix nanos
	base := time.Unix(1000, 0)
	fake.Store(int64(0))
	var escalated atomic.Int64
	w := newSupWorld(t,
		RestartPolicy{MaxRestarts: 2, Window: time.Minute},
		func(rt *Runtime, f Fault) { escalated.Add(1) },
	)
	w.sup.Clock = func() time.Time { return base.Add(time.Duration(fake.Load())) }

	// Two faults at t=0 use up the budget.
	for i := 0; i < 2; i++ {
		w.col.ctx.Trigger(ping{N: -1}, w.col.port)
		w.waitGeneration(t, i+1)
		waitQuiet(t, w.rt)
	}
	// Slide the clock past the window: the old restarts fall out of the
	// budget and a third fault restarts instead of escalating.
	fake.Store(int64(2 * time.Minute))
	w.col.ctx.Trigger(ping{N: -1}, w.col.port)
	w.waitGeneration(t, 3)
	waitQuiet(t, w.rt)
	if escalated.Load() != 0 {
		t.Fatalf("escalated although the window had slid past the old restarts")
	}
	if w.sup.Generation("worker") != 3 {
		t.Fatalf("generation %d, want 3", w.sup.Generation("worker"))
	}
}

func TestSupervisorMultipleChildren(t *testing.T) {
	sup := NewSupervisor(RestartPolicy{},
		ChildSpec{Name: "a", Factory: func() Definition { return &crashable{} }},
		ChildSpec{Name: "b", Factory: func() Definition { return &crashable{} }},
	)
	rt := newTestRuntime(t)
	rt.MustBootstrap("Main", SetupFunc(func(ctx *Ctx) {
		ctx.Create("sup", sup)
	}))
	waitQuiet(t, rt)
	if sup.Child("a") == nil || sup.Child("b") == nil {
		t.Fatalf("children not created")
	}
	if sup.Child("a") == sup.Child("b") {
		t.Fatalf("children aliased")
	}
	if sup.Generation("a") != 0 {
		t.Fatalf("fresh child has nonzero generation")
	}
}

func TestSupervisorNilFactoryPanics(t *testing.T) {
	rt := newTestRuntime(t)
	defer func() {
		if recover() == nil {
			t.Fatalf("nil factory must panic at setup")
		}
	}()
	rt.MustBootstrap("Main", SetupFunc(func(ctx *Ctx) {
		ctx.Create("sup", NewSupervisor(RestartPolicy{}, ChildSpec{Name: "x"}))
	}))
}
