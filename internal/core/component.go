package core

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
)

// Definition is implemented by user component definitions. Setup plays the
// role of the Kompics component constructor: it declares the component's
// provided and required ports, subscribes its event handlers, and may
// create and connect subcomponents. Setup runs exactly once, before any
// event is delivered to the component.
type Definition interface {
	Setup(ctx *Ctx)
}

// SetupFunc adapts a plain function to the Definition interface, for small
// leaf components and tests.
type SetupFunc func(ctx *Ctx)

// Setup implements Definition.
func (f SetupFunc) Setup(ctx *Ctx) { f(ctx) }

var _ Definition = SetupFunc(nil)

// Scheduler-visible component states (the paper's idle/ready/busy).
const (
	schedIdle int32 = iota
	schedReady
	schedBusy
)

// Lifecycle states. Components are created passive: they receive and queue
// events but execute only control events until started.
const (
	lifePassive int32 = iota
	lifeActive
	lifeDestroyed
)

// workItem is one unit of scheduler work: a single event paired with the
// matching subscriptions of one component, executed sequentially. via
// records the port half the event crossed into, so reconfiguration can
// migrate still-queued events to a replacement component.
type workItem struct {
	event   Event
	subs    []*Subscription
	control bool
	via     *Port
}

// Component is an event-driven reactive state machine: the runtime
// representation of one instantiated component definition. Handlers of one
// component never execute concurrently with each other; components execute
// concurrently with other components under the production scheduler.
type Component struct {
	name   string
	def    Definition
	rt     *Runtime
	parent *Component

	mu       sync.Mutex
	children []*Component
	provided map[*PortType]*portPair
	required map[*PortType]*portPair
	control  *portPair

	qmu   sync.Mutex
	ctrlQ ring
	mainQ ring

	sched atomic.Int32
	life  atomic.Int32
	// pending counts queued work items (control + main). It is mutated only
	// under qmu — so it equals the exact queue sizes whenever qmu is held —
	// and read lock-free by hasRunnable's empty fast path, which spares a
	// drained component's post-execution wake a full mutex round trip.
	pending atomic.Int32

	// stats are the component's always-on telemetry counters (see
	// telemetry.go); embedded so the dispatch path reaches them without an
	// extra indirection or allocation.
	stats compStats

	// curWorker is the scheduler worker currently executing this
	// component's handlers, set by the work-stealing scheduler around
	// ExecuteOne. Ctx.Trigger reads it as a locality hint so events
	// triggered from inside a handler schedule their destinations onto the
	// triggering worker's own deque. It is advisory only: a stale or nil
	// value merely costs locality, never correctness.
	curWorker atomic.Pointer[worker]

	ctx *Ctx
}

// newComponent instantiates a definition under a parent (nil for the root),
// runs its Setup, and leaves it passive.
func newComponent(rt *Runtime, parent *Component, name string, def Definition) *Component {
	c := &Component{
		name:     name,
		def:      def,
		rt:       rt,
		parent:   parent,
		provided: make(map[*PortType]*portPair),
		required: make(map[*PortType]*portPair),
	}
	c.control = newPortPair(ControlPortType, c, true)
	c.control.isControl = true
	c.ctx = &Ctx{c: c}
	rt.componentCreated(c)
	def.Setup(c.ctx)
	return c
}

// Name returns the component's name within its parent.
func (c *Component) Name() string { return c.name }

// Path returns the slash-separated path from the root component.
func (c *Component) Path() string {
	if c.parent == nil {
		return "/" + c.name
	}
	return c.parent.Path() + "/" + c.name
}

// Parent returns the enclosing composite component, or nil for the root.
func (c *Component) Parent() *Component { return c.parent }

// Definition returns the user definition this component was instantiated
// from (useful for tests and for state transfer during hot-swap).
func (c *Component) Definition() Definition { return c.def }

// Runtime returns the runtime the component executes under.
func (c *Component) Runtime() *Runtime { return c.rt }

// IsActive reports whether the component has been started and not stopped.
func (c *Component) IsActive() bool { return c.life.Load() == lifeActive }

// IsDestroyed reports whether the component has been destroyed.
func (c *Component) IsDestroyed() bool { return c.life.Load() == lifeDestroyed }

// Provided returns the outer half of the component's provided port of the
// given type, for use by the enclosing scope (connecting channels or
// subscribing observer handlers). It returns nil if the component provides
// no such port.
func (c *Component) Provided(pt *PortType) *Port {
	c.mu.Lock()
	defer c.mu.Unlock()
	if pp, ok := c.provided[pt]; ok {
		return pp.half(outer)
	}
	return nil
}

// Required returns the outer half of the component's required port of the
// given type, or nil if the component requires no such port.
func (c *Component) Required(pt *PortType) *Port {
	c.mu.Lock()
	defer c.mu.Unlock()
	if pp, ok := c.required[pt]; ok {
		return pp.half(outer)
	}
	return nil
}

// Control returns the outer half of the component's control port, on which
// the enclosing scope triggers Start/Stop/Init/Kill and observes Fault
// events.
func (c *Component) Control() *Port { return c.control.half(outer) }

// Children returns a snapshot of the component's current subcomponents.
func (c *Component) Children() []*Component {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Component, len(c.children))
	copy(out, c.children)
	return out
}

// enqueue appends a work item to the appropriate queue and makes the
// component ready if it was idle. hint, when non-nil, is the worker whose
// handler execution produced the event; it keeps the readied component on
// that worker's own deque for cache locality.
func (c *Component) enqueue(it workItem, hint *worker) {
	if c.life.Load() == lifeDestroyed {
		return // events to destroyed components are dropped
	}
	c.qmu.Lock()
	if it.control {
		c.ctrlQ.push(it)
	} else {
		c.mainQ.push(it)
	}
	c.pending.Add(1)
	runnable := c.runnableLocked()
	c.qmu.Unlock()
	if runnable {
		c.wakeRunnable(hint)
	}
}

// enqueueRun appends a run of work items bound for this component — one
// destination's slice of a batched fan-out — under a single queue-lock
// acquisition, in run order. If the component became runnable and was idle,
// it is recorded in the batch's ready list for the batched scheduler
// submission instead of being submitted immediately (see fanoutBatch.flush);
// the ready CAS still happens here so readiness order matches enqueue order.
func (c *Component) enqueueRun(ents []fanoutEntry, b *fanoutBatch) {
	if c.life.Load() == lifeDestroyed {
		return // events to destroyed components are dropped
	}
	c.qmu.Lock()
	for i := 0; i < len(ents); {
		ctrl := ents[i].item.control
		j := i + 1
		for j < len(ents) && ents[j].item.control == ctrl {
			j++
		}
		q := &c.mainQ
		if ctrl {
			q = &c.ctrlQ
		}
		q.reserve(j - i)
		for k := i; k < j; k++ {
			q.push(ents[k].item)
		}
		i = j
	}
	c.pending.Add(int32(len(ents)))
	runnable := c.runnableLocked()
	c.qmu.Unlock()
	if !runnable {
		return
	}
	if c.sched.CompareAndSwap(schedIdle, schedReady) {
		c.rt.componentReady(c)
		b.ready = append(b.ready, c)
	}
}

// wake schedules the component if it is idle and has runnable work. When the
// locality hint names a worker of this runtime's scheduler, the component is
// submitted to that worker's own deque; otherwise it goes through the
// scheduler's placement policy.
func (c *Component) wake(hint *worker) {
	if !c.hasRunnable() {
		return
	}
	c.wakeRunnable(hint)
}

// wakeRunnable is wake for callers that already observed runnable work
// under qmu (the enqueue paths), skipping the redundant hasRunnable lock
// round trip.
func (c *Component) wakeRunnable(hint *worker) {
	if c.sched.CompareAndSwap(schedIdle, schedReady) {
		c.rt.componentReady(c)
		if hint != nil && hint.sched.is(c.rt.scheduler) {
			hint.submitLocal(c)
		} else {
			c.rt.scheduler.Schedule(c)
		}
	}
}

// pop removes the next runnable work item: control events first; main
// events only when the component is active.
func (c *Component) pop() (workItem, bool) {
	c.qmu.Lock()
	defer c.qmu.Unlock()
	if it, ok := c.ctrlQ.pop(); ok {
		c.pending.Add(-1)
		return it, true
	}
	if c.life.Load() == lifeActive {
		if it, ok := c.mainQ.pop(); ok {
			c.pending.Add(-1)
			return it, true
		}
	}
	return workItem{}, false
}

// hasRunnable reports whether a runnable work item is queued. The empty
// case — the common one for a component that just drained its queue — is
// answered by the lock-free pending counter; only a non-empty queue pays
// the lock to check which queue and the lifecycle state.
func (c *Component) hasRunnable() bool {
	if c.pending.Load() == 0 {
		return false
	}
	c.qmu.Lock()
	defer c.qmu.Unlock()
	return c.runnableLocked()
}

// runnableLocked reports whether a runnable work item is queued. Called
// with qmu held.
func (c *Component) runnableLocked() bool {
	if c.ctrlQ.len() > 0 {
		return true
	}
	return c.life.Load() == lifeActive && c.mainQ.len() > 0
}

// QueuedEvents returns the number of events currently waiting in the
// component's queues (control + main). Intended for monitoring.
func (c *Component) QueuedEvents() int {
	c.qmu.Lock()
	defer c.qmu.Unlock()
	return c.ctrlQ.len() + c.mainQ.len()
}

// stealMainQueue atomically removes and returns all queued main work
// items, in FIFO order. Used by Swap to migrate undelivered events from a
// component being replaced.
func (c *Component) stealMainQueue() []workItem {
	c.qmu.Lock()
	defer c.qmu.Unlock()
	var items []workItem
	for {
		it, ok := c.mainQ.pop()
		if !ok {
			return items
		}
		c.pending.Add(-1)
		items = append(items, it)
	}
}

// ExecuteOne runs at most one work item of the component. It is the
// scheduler SPI: exactly one scheduler goroutine may call it per readiness
// notification (the component was handed to the scheduler in the ready
// state). It returns true if an item was executed.
//
// After executing, the component returns to idle and reschedules itself if
// more runnable work is queued, so that schedulers interleave components
// fairly, executing one event in one component at a time.
func (c *Component) ExecuteOne() bool {
	return c.ExecuteBatch(1) == 1
}

// ExecuteBatch runs up to limit queued work items of the component in one
// scheduler activation, returning the number executed. The busy/idle
// transition, the re-wake, and the active-count release are paid once for
// the whole batch, so a component with a backlog (the receiving side of a
// batched fan-out, say) does not bounce through the ready queue between
// every two events. limit bounds the activation so a busy component still
// interleaves fairly with the rest of the ready set. The same exclusivity
// contract as ExecuteOne applies.
func (c *Component) ExecuteBatch(limit int) int {
	c.sched.Store(schedBusy)
	n := 0
	for n < limit {
		it, ok := c.pop()
		if !ok {
			break
		}
		c.executeItem(it)
		n++
	}
	c.sched.Store(schedIdle)
	// Re-wake BEFORE releasing this execution's active count: if more work
	// is queued, the ready count never transiently reaches zero, so
	// WaitQuiescence cannot observe a false quiescence mid-drain. The
	// executing worker (if any) is the locality hint, so a component with a
	// backlog re-enters that worker's own deque.
	c.wake(c.curWorker.Load())
	c.rt.componentIdle(c)
	return n
}

// executeItem runs one popped work item with its telemetry bookkeeping: the
// handled counter is unconditional (one uncontended atomic add); the clock
// is read only when this execution is latency-sampled or a trace sink is
// attached, keeping the common path free of time syscalls and allocations.
func (c *Component) executeItem(it workItem) {
	rt := c.rt
	n := c.stats.handled.Add(1)
	sampled := n&rt.latMask == 0
	if sink := rt.traceSink; sink != nil || sampled {
		start := rt.clock.Now()
		c.runItem(it)
		d := rt.clock.Now().Sub(start)
		if sampled {
			c.stats.latency.observe(d)
		}
		if sink != nil {
			handler := ""
			if len(it.subs) > 0 {
				handler = it.subs[0].name
			}
			sink.Record(TraceRecord{
				At:        start,
				Duration:  d,
				Component: c,
				Port:      it.via,
				Event:     reflect.TypeOf(it.event),
				Handler:   handler,
				Handlers:  len(it.subs),
			})
		}
	} else {
		c.runItem(it)
	}
}

// runItem executes one event: lifecycle interception first, then every
// matched handler sequentially, each under fault isolation.
func (c *Component) runItem(it workItem) {
	switch it.event.(type) {
	case Start:
		c.onStart()
	case Stop:
		c.onStop()
	case Kill:
		c.onStop()
		defer c.destroy()
	}
	for _, s := range it.subs {
		if !s.active.Load() { // unsubscribed since delivery
			continue
		}
		c.invoke(s, it.event)
	}
}

// invoke runs one handler under fault isolation: a panic is caught, wrapped
// in a Fault event, and escalated through the component hierarchy.
func (c *Component) invoke(s *Subscription, ev Event) {
	defer func() {
		if r := recover(); r != nil {
			c.rt.handleFault(c, r, ev, s)
		}
	}()
	s.handler(ev)
}

// onStart activates the component and recursively starts its current
// subcomponents.
func (c *Component) onStart() {
	if !c.life.CompareAndSwap(lifePassive, lifeActive) {
		return
	}
	for _, child := range c.Children() {
		child.Control().present(Start{})
	}
}

// onStop passivates the component and recursively stops its current
// subcomponents.
func (c *Component) onStop() {
	if !c.life.CompareAndSwap(lifeActive, lifePassive) {
		return
	}
	for _, child := range c.Children() {
		child.Control().present(Stop{})
	}
}

// destroy tears down the component and its whole subtree: children are
// destroyed recursively, all channels attached to any of its ports are
// detached, queued events are dropped, and the component is removed from
// its parent.
func (c *Component) destroy() {
	if c.life.Swap(lifeDestroyed) == lifeDestroyed {
		return
	}
	for _, child := range c.Children() {
		child.destroy()
	}

	c.mu.Lock()
	pairs := make([]*portPair, 0, len(c.provided)+len(c.required)+1)
	for _, pp := range c.provided {
		pairs = append(pairs, pp)
	}
	for _, pp := range c.required {
		pairs = append(pairs, pp)
	}
	pairs = append(pairs, c.control)
	c.children = nil
	c.mu.Unlock()

	for _, pp := range pairs {
		pp.mu.Lock()
		chans := append(append([]*Channel(nil), pp.chans[0]...), pp.chans[1]...)
		pp.mu.Unlock()
		for _, ch := range chans {
			for _, f := range [2]face{inner, outer} {
				_ = ch.Unplug(pp.half(f))
			}
		}
	}

	c.qmu.Lock()
	c.pending.Add(-int32(c.ctrlQ.len() + c.mainQ.len()))
	c.ctrlQ.reset()
	c.mainQ.reset()
	c.qmu.Unlock()

	if c.parent != nil {
		c.parent.removeChild(c)
	}
	c.rt.componentDestroyed(c)
}

func (c *Component) removeChild(child *Component) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, cur := range c.children {
		if cur == child {
			c.children = append(c.children[:i:i], c.children[i+1:]...)
			return
		}
	}
}

// String renders the component path for diagnostics.
func (c *Component) String() string { return c.Path() }

// errPortScope builds the error for out-of-scope port access.
func (c *Component) errPortScope(op string, p *Port) error {
	return fmt.Errorf("core: %s: port %s is not in scope of component %s "+
		"(a component may use its own ports and the ports of its immediate subcomponents)",
		op, p, c.Path())
}

// inScope reports whether half p is usable from inside component c: its own
// inner halves, or outer halves of its immediate subcomponents.
func (c *Component) inScope(p *Port) bool {
	if p.pair.owner == c && p.face == inner {
		return true
	}
	if p.pair.owner != nil && p.pair.owner.parent == c && p.face == outer {
		return true
	}
	return false
}
