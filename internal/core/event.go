// Package core implements the Kompics component model: events, typed
// bidirectional ports, channels, event handlers, subscriptions, hierarchical
// components, component lifecycle and fault management, dynamic
// reconfiguration, and pluggable schedulers (a multi-core work-stealing
// scheduler for production and a single-threaded deterministic scheduler for
// simulation, the latter provided by the simulation package).
//
// The model follows "Message-Passing Concurrency for Scalable, Stateful,
// Reconfigurable Middleware" (Arad, Dowling, Haridi; MIDDLEWARE 2012).
// Components are reactive state machines that execute concurrently and
// communicate exclusively by passing data-carrying typed events through
// typed bidirectional ports connected by channels. Handlers of a single
// component instance always execute mutually exclusively, so component
// state needs no locking.
package core

import (
	"fmt"
	"reflect"
)

// Event is any immutable value passed between components. Events should be
// treated as read-only by every handler that receives them: the same event
// value may be delivered to many components concurrently.
//
// Event hierarchies (the paper's "DataMessage extends Message") are
// expressed with Go interfaces: a handler subscribed for an interface type
// fires for every concrete event that satisfies it, and a handler subscribed
// for a concrete type fires for exactly that type.
type Event any

// EventType is the runtime representation of an event type used in port
// type definitions and subscriptions. It wraps reflect.Type so that
// assignability (Go's stand-in for Kompics' subtyping) can be checked
// dynamically when events traverse ports.
type EventType struct {
	t reflect.Type
}

// TypeOf returns the EventType for the static type parameter E.
// E may be a concrete struct type, a pointer type, or an interface type.
func TypeOf[E Event]() EventType {
	return EventType{t: reflect.TypeFor[E]()}
}

// DynamicTypeOf returns the EventType of a concrete event value.
func DynamicTypeOf(ev Event) EventType {
	return EventType{t: reflect.TypeOf(ev)}
}

// Accepts reports whether an event of dynamic type dyn may be handled where
// events of type et are expected: exact match, or dyn implements the
// interface et, or dyn is otherwise assignable to et.
func (et EventType) Accepts(dyn EventType) bool {
	if et.t == nil || dyn.t == nil {
		return false
	}
	if dyn.t == et.t {
		return true
	}
	return dyn.t.AssignableTo(et.t)
}

// AcceptsValue reports whether the concrete event value ev may be handled
// where events of type et are expected.
func (et EventType) AcceptsValue(ev Event) bool {
	return et.Accepts(DynamicTypeOf(ev))
}

// String returns the name of the underlying Go type.
func (et EventType) String() string {
	if et.t == nil {
		return "<nil event type>"
	}
	return et.t.String()
}

// valid reports whether the event type wraps a real type.
func (et EventType) valid() bool { return et.t != nil }

// checkEvent rejects nil events early with a descriptive error so a bad
// Trigger call fails at the call site instead of inside a remote handler.
func checkEvent(ev Event) error {
	if ev == nil {
		return fmt.Errorf("core: nil event")
	}
	return nil
}
