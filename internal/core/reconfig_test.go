package core

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// collector records pongs in arrival order.
type collector struct {
	ctx  *Ctx
	port *Port
	mu   sync.Mutex
	got  []int
}

func (c *collector) Setup(ctx *Ctx) {
	c.ctx = ctx
	c.port = ctx.Requires(pingPongPort)
	Subscribe(ctx, c.port, func(p pong) {
		c.mu.Lock()
		c.got = append(c.got, p.N)
		c.mu.Unlock()
	})
}

func (c *collector) snapshot() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]int, len(c.got))
	copy(out, c.got)
	return out
}

func TestChannelHoldQueuesBothDirections(t *testing.T) {
	rt := newTestRuntime(t)
	srv := &echoServer{}
	col := &collector{}
	var ch *Channel
	rt.MustBootstrap("Main", SetupFunc(func(ctx *Ctx) {
		s := ctx.Create("server", srv)
		c := ctx.Create("col", col)
		ch = ctx.Connect(s.Provided(pingPongPort), c.Required(pingPongPort))
	}))
	waitQuiet(t, rt)

	ch.Hold()
	if !ch.Held() {
		t.Fatalf("channel must report held")
	}
	col.ctx.Trigger(ping{N: 1}, col.port)
	srv.ctx.Trigger(pong{N: 2}, srv.port)
	waitQuiet(t, rt)
	if srv.seen.Load() != 0 {
		t.Fatalf("held channel forwarded a request")
	}
	if len(col.snapshot()) != 0 {
		t.Fatalf("held channel forwarded an indication")
	}
	if ch.QueuedLen() != 2 {
		t.Fatalf("channel queued %d events, want 2", ch.QueuedLen())
	}

	ch.Resume()
	waitQuiet(t, rt)
	if srv.seen.Load() != 1 {
		t.Fatalf("after resume, server saw %d pings, want 1", srv.seen.Load())
	}
	// The held pong{2} plus the echo pong{1} both arrive.
	got := col.snapshot()
	if len(got) != 2 {
		t.Fatalf("after resume, collector got %v, want 2 pongs", got)
	}
}

func TestChannelResumePreservesFIFO(t *testing.T) {
	rt := newTestRuntime(t)
	srv := &echoServer{}
	col := &collector{}
	var ch *Channel
	rt.MustBootstrap("Main", SetupFunc(func(ctx *Ctx) {
		s := ctx.Create("server", srv)
		c := ctx.Create("col", col)
		ch = ctx.Connect(s.Provided(pingPongPort), c.Required(pingPongPort))
	}))
	waitQuiet(t, rt)

	ch.Hold()
	const n = 50
	for i := 0; i < n; i++ {
		srv.ctx.Trigger(pong{N: i}, srv.port)
	}
	waitQuiet(t, rt)
	ch.Resume()
	waitQuiet(t, rt)
	got := col.snapshot()
	if len(got) != n {
		t.Fatalf("collector got %d pongs, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO violated at %d: got %d", i, v)
		}
	}
}

func TestUnplugPlugMovesChannel(t *testing.T) {
	rt := newTestRuntime(t)
	srv1 := &echoServer{}
	srv2 := &echoServer{}
	col := &collector{}
	var ch *Channel
	var s1, s2 *Component
	rt.MustBootstrap("Main", SetupFunc(func(ctx *Ctx) {
		s1 = ctx.Create("s1", srv1)
		s2 = ctx.Create("s2", srv2)
		c := ctx.Create("col", col)
		ch = ctx.Connect(s1.Provided(pingPongPort), c.Required(pingPongPort))
	}))
	waitQuiet(t, rt)

	col.ctx.Trigger(ping{N: 1}, col.port)
	waitQuiet(t, rt)
	if srv1.seen.Load() != 1 {
		t.Fatalf("s1 saw %d pings, want 1", srv1.seen.Load())
	}

	// Move the provider end from s1 to s2 while holding.
	ch.Hold()
	if err := ch.Unplug(s1.Provided(pingPongPort)); err != nil {
		t.Fatal(err)
	}
	col.ctx.Trigger(ping{N: 2}, col.port) // queued in channel
	waitQuiet(t, rt)
	if err := ch.Plug(s2.Provided(pingPongPort)); err != nil {
		t.Fatal(err)
	}
	ch.Resume()
	waitQuiet(t, rt)
	if srv1.seen.Load() != 1 {
		t.Fatalf("s1 saw %d pings after unplug, want still 1", srv1.seen.Load())
	}
	if srv2.seen.Load() != 1 {
		t.Fatalf("s2 saw %d pings after plug+resume, want 1 (no drop)", srv2.seen.Load())
	}
	if len(col.snapshot()) != 2 {
		t.Fatalf("collector got %d pongs, want 2", len(col.snapshot()))
	}
}

func TestUnplugErrors(t *testing.T) {
	rt := newTestRuntime(t)
	srv := &echoServer{}
	col := &collector{}
	var ch *Channel
	var s *Component
	rt.MustBootstrap("Main", SetupFunc(func(ctx *Ctx) {
		s = ctx.Create("s", srv)
		c := ctx.Create("col", col)
		ch = ctx.Connect(s.Provided(pingPongPort), c.Required(pingPongPort))
	}))
	waitQuiet(t, rt)
	if err := ch.Unplug(nil); err == nil {
		t.Fatalf("unplug nil must fail")
	}
	if err := ch.Unplug(s.Control()); err == nil {
		t.Fatalf("unplug non-endpoint must fail")
	}
	if err := ch.Plug(s.Provided(pingPongPort)); err == nil {
		t.Fatalf("plug with no free end must fail")
	}
	if err := ch.Unplug(s.Provided(pingPongPort)); err != nil {
		t.Fatal(err)
	}
	// Plug a non-complementary half (another requirer-like half).
	if err := ch.Plug(col.port); err == nil {
		t.Fatalf("plug non-complementary half must fail")
	}
}

func TestDisconnectDetachesBothEnds(t *testing.T) {
	rt := newTestRuntime(t)
	srv := &echoServer{}
	col := &collector{}
	var ch *Channel
	rt.MustBootstrap("Main", SetupFunc(func(ctx *Ctx) {
		s := ctx.Create("s", srv)
		c := ctx.Create("col", col)
		ch = ctx.Connect(s.Provided(pingPongPort), c.Required(pingPongPort))
	}))
	waitQuiet(t, rt)
	ch.Disconnect()
	a, b := ch.Ends()
	if a != nil || b != nil {
		t.Fatalf("ends not cleared after disconnect")
	}
	col.ctx.Trigger(ping{N: 1}, col.port)
	waitQuiet(t, rt)
	if srv.seen.Load() != 0 {
		t.Fatalf("disconnected channel still forwards")
	}
}

// --- hot swap ---------------------------------------------------------------

// counterServer counts pings and replies; supports state dump/load so a
// replacement continues the count.
type counterServer struct {
	ctx   *Ctx
	port  *Port
	count int // guarded by handler serialization
	label string
	mu    sync.Mutex
}

func (s *counterServer) Setup(ctx *Ctx) {
	s.ctx = ctx
	s.port = ctx.Provides(pingPongPort)
	Subscribe(ctx, s.port, func(p ping) {
		s.mu.Lock()
		s.count++
		n := s.count
		s.mu.Unlock()
		ctx.Trigger(pong{N: n}, s.port)
	})
}

func (s *counterServer) DumpState() any {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

func (s *counterServer) LoadState(state any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.count = state.(int)
}

var (
	_ StateDumper = (*counterServer)(nil)
	_ StateLoader = (*counterServer)(nil)
)

func TestSwapTransfersStateAndTraffic(t *testing.T) {
	rt := newTestRuntime(t)
	old := &counterServer{label: "old"}
	col := &collector{}
	var oldComp *Component
	var rootCtx *Ctx
	rt.MustBootstrap("Main", SetupFunc(func(ctx *Ctx) {
		rootCtx = ctx
		oldComp = ctx.Create("v1", old)
		c := ctx.Create("col", col)
		ctx.Connect(oldComp.Provided(pingPongPort), c.Required(pingPongPort))
	}))
	waitQuiet(t, rt)

	for i := 0; i < 3; i++ {
		col.ctx.Trigger(ping{}, col.port)
	}
	waitQuiet(t, rt)
	if got := col.snapshot(); len(got) != 3 || got[2] != 3 {
		t.Fatalf("pre-swap pongs %v, want [1 2 3]", got)
	}

	repl := &counterServer{label: "new"}
	newComp, err := rootCtx.Swap(oldComp, "v2", repl)
	if err != nil {
		t.Fatalf("swap: %v", err)
	}
	waitQuiet(t, rt)
	if !oldComp.IsDestroyed() {
		t.Fatalf("old component must be destroyed after swap")
	}
	if !newComp.IsActive() {
		t.Fatalf("replacement must be active after swap")
	}

	col.ctx.Trigger(ping{}, col.port)
	waitQuiet(t, rt)
	got := col.snapshot()
	if len(got) != 4 || got[3] != 4 {
		t.Fatalf("post-swap pongs %v, want counter to continue at 4", got)
	}
}

func TestSwapDoesNotDropConcurrentTraffic(t *testing.T) {
	rt := newTestRuntime(t)
	old := &counterServer{}
	col := &collector{}
	var oldComp *Component
	var rootCtx *Ctx
	rt.MustBootstrap("Main", SetupFunc(func(ctx *Ctx) {
		rootCtx = ctx
		oldComp = ctx.Create("v1", old)
		c := ctx.Create("col", col)
		ctx.Connect(oldComp.Provided(pingPongPort), c.Required(pingPongPort))
	}))
	waitQuiet(t, rt)

	const total = 500
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < total; i++ {
			col.ctx.Trigger(ping{}, col.port)
			if i == total/2 {
				time.Sleep(time.Millisecond)
			}
		}
	}()
	time.Sleep(200 * time.Microsecond)
	if _, err := rootCtx.Swap(oldComp, "v2", &counterServer{}); err != nil {
		t.Fatalf("swap: %v", err)
	}
	<-done
	waitQuiet(t, rt)
	got := col.snapshot()
	if len(got) != total {
		t.Fatalf("got %d pongs, want %d (no drops across swap)", len(got), total)
	}
	// The counter is strictly increasing across the swap (state transfer).
	for i := 1; i < len(got); i++ {
		if got[i] != got[i-1]+1 {
			t.Fatalf("counter not contiguous at %d: %d -> %d", i, got[i-1], got[i])
		}
	}
}

func TestSwapRejectsIncompatibleReplacement(t *testing.T) {
	rt := newTestRuntime(t)
	old := &counterServer{}
	col := &collector{}
	var oldComp *Component
	var rootCtx *Ctx
	rt.MustBootstrap("Main", SetupFunc(func(ctx *Ctx) {
		rootCtx = ctx
		oldComp = ctx.Create("v1", old)
		c := ctx.Create("col", col)
		ctx.Connect(oldComp.Provided(pingPongPort), c.Required(pingPongPort))
	}))
	waitQuiet(t, rt)

	// Replacement lacks the pingPongPort: swap must fail and restore.
	if _, err := rootCtx.Swap(oldComp, "bad", SetupFunc(func(*Ctx) {})); err == nil {
		t.Fatalf("swap with incompatible replacement must fail")
	}
	waitQuiet(t, rt)
	// Original keeps working.
	col.ctx.Trigger(ping{}, col.port)
	waitQuiet(t, rt)
	if len(col.snapshot()) != 1 {
		t.Fatalf("original wiring broken after failed swap")
	}
}

func TestSwapOfNonChildFails(t *testing.T) {
	rt := newTestRuntime(t)
	var rootCtx *Ctx
	var grandchild *Component
	rt.MustBootstrap("Main", SetupFunc(func(ctx *Ctx) {
		rootCtx = ctx
		ctx.Create("mid", SetupFunc(func(cx *Ctx) {
			grandchild = cx.Create("g", SetupFunc(func(*Ctx) {}))
		}))
	}))
	waitQuiet(t, rt)
	if _, err := rootCtx.Swap(grandchild, "x", SetupFunc(func(*Ctx) {})); err == nil {
		t.Fatalf("swap of non-child must fail")
	}
	if _, err := rootCtx.Swap(nil, "x", SetupFunc(func(*Ctx) {})); err == nil {
		t.Fatalf("swap of nil must fail")
	}
}

// --- property-based tests ----------------------------------------------------

// Property: for any sequence of pong payloads sent while the channel cycles
// through hold/resume phases, the collector receives exactly the sent
// sequence, in order.
func TestPropertyChannelFIFOUnderHoldResume(t *testing.T) {
	f := func(payload []uint8, holdMask uint32) bool {
		if len(payload) > 64 {
			payload = payload[:64]
		}
		rt := New(WithScheduler(NewWorkStealingScheduler(2)), WithFaultPolicy(LogAndContinue))
		defer rt.Shutdown()
		srv := &echoServer{}
		col := &collector{}
		var ch *Channel
		rt.MustBootstrap("Main", SetupFunc(func(ctx *Ctx) {
			s := ctx.Create("server", srv)
			c := ctx.Create("col", col)
			ch = ctx.Connect(s.Provided(pingPongPort), c.Required(pingPongPort))
		}))
		if !rt.WaitQuiescence(5 * time.Second) {
			return false
		}
		for i, v := range payload {
			if holdMask&(1<<(uint(i)%32)) != 0 {
				ch.Hold()
			} else {
				ch.Resume()
			}
			srv.ctx.Trigger(pong{N: int(v)}, srv.port)
		}
		ch.Resume()
		if !rt.WaitQuiescence(5 * time.Second) {
			return false
		}
		got := col.snapshot()
		if len(got) != len(payload) {
			return false
		}
		for i := range payload {
			if got[i] != int(payload[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: event-type acceptance is reflexive and respects interface
// assignability for the known corpus of event shapes.
func TestPropertyEventTypeLaws(t *testing.T) {
	events := []Event{ping{1}, pong{2}, baseMsg{"s"}, dataMsg{baseMsg{"d"}, 3}, Start{}, Stop{}}
	for _, ev := range events {
		dyn := DynamicTypeOf(ev)
		if !dyn.Accepts(dyn) {
			t.Errorf("acceptance not reflexive for %T", ev)
		}
	}
	iface := TypeOf[testMsg]()
	for _, ev := range events {
		_, isMsg := ev.(testMsg)
		if got := iface.AcceptsValue(ev); got != isMsg {
			t.Errorf("interface acceptance for %T = %v, want %v", ev, got, isMsg)
		}
	}
}

// Property: the ring queue behaves as a FIFO for arbitrary push/pop
// sequences (compared against a slice model).
func TestPropertyRingQueueModel(t *testing.T) {
	f := func(ops []bool, vals []uint8) bool {
		var r ring
		var model []int
		vi := 0
		nextVal := func() int {
			if len(vals) == 0 {
				return vi
			}
			v := int(vals[vi%len(vals)])
			vi++
			return v
		}
		for _, isPush := range ops {
			if isPush {
				v := nextVal()
				r.push(workItem{event: pong{N: v}})
				model = append(model, v)
			} else {
				it, ok := r.pop()
				if len(model) == 0 {
					if ok {
						return false
					}
					continue
				}
				if !ok {
					return false
				}
				if it.event.(pong).N != model[0] {
					return false
				}
				model = model[1:]
			}
			if r.len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
