package cats

import (
	"repro/internal/abd"
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/router"
	"repro/internal/timer"
	"repro/internal/web"
)

// Peer is one deployable CATS node instance: a composite bundling the
// environment's transport and timer providers with a Node, re-exporting
// the node's PutGet, Router, and Web services. The simulator host and the
// executables both deploy Peers.
type Peer struct {
	Env     Env
	NodeCfg NodeConfig

	// Node is the embedded CATS node definition (set during Setup).
	Node *Node
}

// NewPeer creates a peer component definition.
func NewPeer(env Env, cfg NodeConfig) *Peer {
	return &Peer{Env: env, NodeCfg: cfg}
}

var _ core.Definition = (*Peer)(nil)

// Setup assembles transport + timer + node and wires the pass-throughs.
func (p *Peer) Setup(ctx *core.Ctx) {
	pg := ctx.Provides(abd.PutGetPortType)
	rt := ctx.Provides(router.PortType)
	webP := ctx.Provides(web.PortType)

	env := p.Env
	if p.NodeCfg.WireCodec != "" {
		// A node-level codec choice overrides the environment's: re-derive
		// the env value where the environment supports codec selection.
		if tcpEnv, ok := env.(TCPEnv); ok {
			tcpEnv.WireCodec = p.NodeCfg.WireCodec
			env = tcpEnv
		}
	}
	tr := ctx.Create("net", env.NewTransport(p.NodeCfg.Self.Addr))
	tm := ctx.Create("timer", p.Env.NewTimer())
	p.Node = NewNode(p.NodeCfg)
	nodeC := ctx.Create("node", p.Node)

	ctx.Connect(nodeC.Required(network.PortType), tr.Provided(network.PortType))
	ctx.Connect(nodeC.Required(timer.PortType), tm.Provided(timer.PortType))
	ctx.Connect(pg, nodeC.Provided(abd.PutGetPortType))
	ctx.Connect(rt, nodeC.Provided(router.PortType))
	ctx.Connect(webP, nodeC.Provided(web.PortType))
}
