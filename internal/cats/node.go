// Package cats assembles the paper's case study: CATS, a scalable,
// self-organizing key-value store with linearizable consistency. A Node is
// a composite component embedding the ping failure detector, Cyclon
// overlay, CATS ring, one-hop router, Consistent ABD replication, an
// optional bootstrap client, an optional monitoring client, and a web
// application — wired exactly as in the paper's Figure 11. The same Node
// runs unchanged in production (TCP transport, real timer), in local
// interactive stress-test execution (loopback transport), and in
// deterministic simulation (emulated network, virtual time).
package cats

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/abd"
	"repro/internal/bootstrap"
	"repro/internal/core"
	"repro/internal/cyclon"
	"repro/internal/fd"
	"repro/internal/handoff"
	"repro/internal/ident"
	"repro/internal/kvstore"
	"repro/internal/monitor"
	"repro/internal/network"
	"repro/internal/ring"
	"repro/internal/router"
	"repro/internal/status"
	"repro/internal/timer"
	"repro/internal/web"
)

// reqCounter allocates process-unique PutGet/Status request IDs, so the
// responses fanning out to every connected client are attributable.
// Deterministic under the single-threaded simulation scheduler.
var reqCounter atomic.Uint64

// NextReqID allocates a fresh request ID.
func NextReqID() uint64 { return reqCounter.Add(1) }

// NodeConfig parameterizes a CATS node.
type NodeConfig struct {
	// Self is the node's ring key and address.
	Self ident.NodeRef
	// Seeds are initial ring contacts, used directly when no bootstrap
	// server is configured. An empty list founds a fresh ring.
	Seeds []ident.NodeRef
	// BootstrapServer, when set, makes the node fetch its seeds from the
	// bootstrap service and send keep-alives after joining.
	BootstrapServer network.Address
	// MonitorServer, when set, makes the node report component status
	// snapshots to the monitoring service.
	MonitorServer network.Address
	// MetricsURL is the node's web listen address, advertised to the
	// monitoring service so its /federate endpoint can scrape this node's
	// /metrics (empty: not federated).
	MetricsURL string

	// ReplicationDegree is the replica group size (default 3).
	ReplicationDegree int
	// SuccessorListSize is the ring resilience parameter (default 4).
	SuccessorListSize int
	// FDInterval is the failure-detector ping period (default 100ms).
	FDInterval time.Duration
	// FDSuspectAfterMisses is how many consecutive unanswered ping rounds
	// raise Suspect (default 2). Raise it to keep short network outages —
	// e.g. transport reconnects — from evicting healthy nodes.
	FDSuspectAfterMisses int
	// StabilizePeriod is the ring stabilization period (default 500ms).
	StabilizePeriod time.Duration
	// CyclonPeriod is the peer-sampling shuffle period (default 1s).
	CyclonPeriod time.Duration
	// OpTimeout is the ABD per-attempt timeout (default 1s).
	OpTimeout time.Duration
	// MonitorPeriod is the status collection period (default 2s).
	MonitorPeriod time.Duration
	// RouterEntryTTL ages out router membership entries not refreshed in
	// this window (default 30s).
	RouterEntryTTL time.Duration
	// RouterSweepPeriod is the router staleness sweep interval
	// (default 5s).
	RouterSweepPeriod time.Duration
	// HandoffPullTimeout bounds how long a view-change sync round waits
	// for lagging members before serving with what transferred
	// (default 2s).
	HandoffPullTimeout time.Duration
	// NoCoalesce disables ABD quorum coalescing, sending every quorum
	// phase as its own message (A/B benchmarking).
	NoCoalesce bool
	// WireCodec names the wire-format backend the node's transport encodes
	// outbound frames with ("gob", "gob+zlib", "binary"); empty keeps the
	// environment default. Decoding is codec-agnostic, so nodes with
	// different settings interoperate.
	WireCodec string

	// Gray-failure resilience knobs, passed through to the ABD component
	// (see abd.Config for semantics and defaults). DeadlineFloor and
	// DeadlineCeil clamp the adaptive per-peer deadline; NoHedge disables
	// hedged quorum phases; the Shed* knobs arm replica-side admission
	// control (all disabled by default).
	DeadlineFloor  time.Duration
	DeadlineCeil   time.Duration
	NoHedge        bool
	ShedServeRate  int
	ShedWindow     time.Duration
	ShedRetryAfter time.Duration
	ShedBacklog    int
	ShedWALBacklog int64

	// DataDir, when set, makes the register store durable: per-shard
	// write-ahead logs + snapshots live under this directory and are
	// replayed — synchronously, before any component starts — when the
	// node boots, so ABD phases and handoff pulls serve recovered state
	// after a whole-process restart. Empty keeps the store memory-only.
	DataDir string
	// WALSync is the WAL fsync policy for durable stores
	// (default kvstore.SyncNever).
	WALSync kvstore.SyncPolicy
	// WALSyncEvery is the group-commit period under kvstore.SyncInterval
	// (default kvstore.DefaultSyncEvery).
	WALSyncEvery time.Duration
	// WALSnapshotBytes is the per-shard WAL size that triggers a snapshot
	// + log truncation (0: kvstore default; negative: never snapshot).
	WALSnapshotBytes int64
}

func (c *NodeConfig) applyDefaults() {
	if c.ReplicationDegree <= 0 {
		c.ReplicationDegree = 3
	}
	if c.SuccessorListSize <= 0 {
		c.SuccessorListSize = 4
	}
	if c.FDInterval <= 0 {
		c.FDInterval = 100 * time.Millisecond
	}
	if c.StabilizePeriod <= 0 {
		c.StabilizePeriod = 500 * time.Millisecond
	}
	if c.CyclonPeriod <= 0 {
		c.CyclonPeriod = time.Second
	}
	if c.OpTimeout <= 0 {
		c.OpTimeout = time.Second
	}
	if c.MonitorPeriod <= 0 {
		c.MonitorPeriod = 2 * time.Second
	}
}

// Node is the CATS Node composite component. It requires Network and Timer
// (satisfied by whichever transport/timer the execution mode provides) and
// provides PutGet, Router, and Web.
type Node struct {
	cfg NodeConfig

	ctx  *core.Ctx
	netP *core.Port // required Network (inner)
	tmrP *core.Port // required Timer (inner)
	pgP  *core.Port // provided PutGet (inner)
	rtP  *core.Port // provided Router (inner)
	webP *core.Port // provided Web (inner)

	// Children (definitions kept for tests/status accessors).
	FD      *fd.Ping
	Cyclon  *cyclon.Overlay
	Ring    *ring.Ring
	Router  *router.Router
	ABD     *abd.ABD
	Handoff *handoff.Handoff

	store *kvstore.Store

	ringOuter   *core.Port
	cyclonOuter *core.Port
	bootOuter   *core.Port
	abdOuter    *core.Port
	statPorts   []*core.Port

	joined bool

	// Web request correlation.
	webStatus map[uint64]*statusRound
	webOps    map[uint64]uint64 // putget reqID → web reqID
}

// statusRound collects one /status page's component snapshots.
type statusRound struct {
	webReqID uint64
	expected int
	got      []status.Response
}

// NewNode creates a CATS node component definition.
func NewNode(cfg NodeConfig) *Node {
	cfg.applyDefaults()
	return &Node{
		cfg:       cfg,
		webStatus: make(map[uint64]*statusRound),
		webOps:    make(map[uint64]uint64),
	}
}

var _ core.Definition = (*Node)(nil)

// Config returns the node's configuration.
func (n *Node) Config() NodeConfig { return n.cfg }

// Self returns the node's identity.
func (n *Node) Self() ident.NodeRef { return n.cfg.Self }

// Joined reports whether the node has joined the ring.
func (n *Node) Joined() bool { return n.joined }

// Store returns the node's register store (nil before Setup).
func (n *Node) Store() *kvstore.Store { return n.store }

// openStore creates the register store: durable (recovered from
// DataDir's snapshots + WAL tails) when a data directory is configured,
// memory-only otherwise.
func (n *Node) openStore() (*kvstore.Store, error) {
	if n.cfg.DataDir == "" {
		return kvstore.New(), nil
	}
	return kvstore.Open(n.cfg.DataDir, kvstore.Options{
		Sync:          n.cfg.WALSync,
		SyncEvery:     n.cfg.WALSyncEvery,
		SnapshotBytes: n.cfg.WALSnapshotBytes,
	})
}

// Setup assembles the node's internal architecture.
func (n *Node) Setup(ctx *core.Ctx) {
	n.ctx = ctx
	n.netP = ctx.Requires(network.PortType)
	n.tmrP = ctx.Requires(timer.PortType)
	n.pgP = ctx.Provides(abd.PutGetPortType)
	n.rtP = ctx.Provides(router.PortType)
	n.webP = ctx.Provides(web.PortType)

	self := n.cfg.Self

	// Substrate children.
	n.FD = fd.NewPing(fd.Config{
		Self:               self.Addr,
		Interval:           n.cfg.FDInterval,
		SuspectAfterMisses: n.cfg.FDSuspectAfterMisses,
	})
	fdC := ctx.Create("fd", n.FD)
	n.Cyclon = cyclon.New(cyclon.Config{Self: self, Period: n.cfg.CyclonPeriod})
	cyC := ctx.Create("cyclon", n.Cyclon)
	n.Ring = ring.New(ring.Config{
		Self:              self,
		SuccessorListSize: n.cfg.SuccessorListSize,
		StabilizePeriod:   n.cfg.StabilizePeriod,
	})
	ringC := ctx.Create("ring", n.Ring)
	n.Router = router.New(router.Config{
		Self:        self,
		EntryTTL:    n.cfg.RouterEntryTTL,
		SweepPeriod: n.cfg.RouterSweepPeriod,
	})
	routC := ctx.Create("router", n.Router)
	// The replica and the handoff component share one register store: the
	// data handoff pulls in must be the data quorum phases serve out.
	// With a DataDir the store recovers from its snapshot + WAL tail
	// right here — Setup runs before any child handles an event, so
	// replay strictly precedes the first served ABD phase or handoff
	// pull. A store that cannot open is fatal: a stateful node must not
	// silently boot empty over unreadable state.
	store, err := n.openStore()
	if err != nil {
		panic(fmt.Sprintf("cats: node %s: open durable store at %q: %v", self, n.cfg.DataDir, err))
	}
	n.store = store
	// Close (flush + release) the WAL when the node is destroyed, so
	// simulated crash-restart cycles can reopen the same directory.
	core.Subscribe(ctx, ctx.Control(), func(core.Stop) {
		store.Close()
	})
	n.ABD = abd.New(abd.Config{
		Self:              self,
		ReplicationDegree: n.cfg.ReplicationDegree,
		OpTimeout:         n.cfg.OpTimeout,
		Store:             store,
		NoCoalesce:        n.cfg.NoCoalesce,
		DeadlineFloor:     n.cfg.DeadlineFloor,
		DeadlineCeil:      n.cfg.DeadlineCeil,
		NoHedge:           n.cfg.NoHedge,
		ShedServeRate:     n.cfg.ShedServeRate,
		ShedWindow:        n.cfg.ShedWindow,
		ShedRetryAfter:    n.cfg.ShedRetryAfter,
		ShedBacklog:       n.cfg.ShedBacklog,
		ShedWALBacklog:    n.cfg.ShedWALBacklog,
	})
	abdC := ctx.Create("abd", n.ABD)
	n.Handoff = handoff.New(handoff.Config{
		Self:        self,
		Degree:      n.cfg.ReplicationDegree,
		Store:       store,
		Members:     n.Router.Members,
		PullTimeout: n.cfg.HandoffPullTimeout,
	})
	hoC := ctx.Create("handoff", n.Handoff)

	// Network/Timer pass-through: children's required ports delegate to
	// the node's own required ports.
	for _, c := range []*core.Component{fdC, cyC, ringC, routC, abdC, hoC} {
		if p := c.Required(network.PortType); p != nil {
			ctx.Connect(p, n.netP)
		}
		if p := c.Required(timer.PortType); p != nil {
			ctx.Connect(p, n.tmrP)
		}
	}

	// Protocol wiring.
	ctx.Connect(fdC.Provided(fd.PortType), ringC.Required(fd.PortType))
	ctx.Connect(fdC.Provided(fd.PortType), routC.Required(fd.PortType))
	ctx.Connect(ringC.Provided(ring.PortType), routC.Required(ring.PortType))
	ctx.Connect(cyC.Provided(cyclon.PortType), routC.Required(cyclon.PortType))
	ctx.Connect(ringC.Provided(ring.PortType), hoC.Required(ring.PortType))
	ctx.Connect(routC.Provided(router.PortType), abdC.Required(router.PortType))
	ctx.Connect(hoC.Provided(handoff.PortType), abdC.Required(handoff.PortType))
	// Slow-peer hints: sustained adaptive-deadline overruns observed by the
	// ABD coordinator feed the failure detector as Suspect-grade evidence.
	ctx.Connect(fdC.Provided(fd.PortType), abdC.Required(fd.PortType))

	// Service pass-through: the node's provided PutGet and Router delegate
	// to ABD and the router.
	ctx.Connect(n.pgP, abdC.Provided(abd.PutGetPortType))
	ctx.Connect(n.rtP, routC.Provided(router.PortType))

	// Runtime telemetry producer: surfaces scheduler/component/network
	// counters through the same Status abstraction the protocol children
	// use, so the monitor server aggregates them without special-casing.
	rtsC := ctx.Create("rtstat", monitor.NewRuntimeStatus())

	// Status surfaces.
	n.statPorts = []*core.Port{
		fdC.Provided(status.PortType),
		cyC.Provided(status.PortType),
		ringC.Provided(status.PortType),
		routC.Provided(status.PortType),
		abdC.Provided(status.PortType),
		hoC.Provided(status.PortType),
		rtsC.Provided(status.PortType),
	}
	for _, sp := range n.statPorts {
		core.Subscribe(ctx, sp, n.handleStatusResponse)
	}

	// Join orchestration.
	n.ringOuter = ringC.Provided(ring.PortType)
	n.cyclonOuter = cyC.Provided(cyclon.PortType)
	n.abdOuter = abdC.Provided(abd.PutGetPortType)
	core.Subscribe(ctx, n.ringOuter, n.handleRingReady)

	if !n.cfg.BootstrapServer.IsZero() {
		bootC := ctx.Create("boot", bootstrap.NewClient(bootstrap.ClientConfig{
			Self:    self.Addr,
			SelfRef: self,
			Server:  n.cfg.BootstrapServer,
		}))
		ctx.Connect(bootC.Required(network.PortType), n.netP)
		ctx.Connect(bootC.Required(timer.PortType), n.tmrP)
		n.bootOuter = bootC.Provided(bootstrap.PortType)
		core.Subscribe(ctx, n.bootOuter, n.handleBootstrapResponse)
		core.Subscribe(ctx, ctx.Control(), func(core.Start) {
			ctx.Trigger(bootstrap.BootstrapRequest{}, n.bootOuter)
		})
	} else {
		core.Subscribe(ctx, ctx.Control(), func(core.Start) {
			n.joinWith(n.cfg.Seeds)
		})
	}

	// Monitoring client, wired to every child's Status port.
	if !n.cfg.MonitorServer.IsZero() {
		monC := ctx.Create("monitor", monitor.NewClient(monitor.ClientConfig{
			Self:       self.Addr,
			Server:     n.cfg.MonitorServer,
			NodeName:   self.String(),
			MetricsURL: n.cfg.MetricsURL,
			Period:     n.cfg.MonitorPeriod,
		}))
		ctx.Connect(monC.Required(network.PortType), n.netP)
		ctx.Connect(monC.Required(timer.PortType), n.tmrP)
		for _, sp := range n.statPorts {
			ctx.Connect(monC.Required(status.PortType), sp)
		}
	}

	// Web application (request handlers on the node's provided Web port).
	core.Subscribe(ctx, n.webP, n.handleWebRequest)
	core.Subscribe(ctx, n.abdOuter, n.handleGetResponse)
	core.Subscribe(ctx, n.abdOuter, n.handlePutResponse)
}

// joinWith starts the ring join and seeds the overlay.
func (n *Node) joinWith(seeds []ident.NodeRef) {
	n.ctx.Trigger(ring.Join{Seeds: seeds}, n.ringOuter)
	if len(seeds) > 0 {
		n.ctx.Trigger(cyclon.JoinOverlay{Seeds: seeds}, n.cyclonOuter)
	}
}

func (n *Node) handleBootstrapResponse(r bootstrap.BootstrapResponse) {
	n.joinWith(r.Peers)
}

func (n *Node) handleRingReady(ring.Ready) {
	n.joined = true
	if n.bootOuter != nil {
		n.ctx.Trigger(bootstrap.BootstrapDone{Self: n.cfg.Self}, n.bootOuter)
	}
}

// --- web application -----------------------------------------------------------

// Web request IDs live in a dedicated space so they never collide with
// other clients of the same ABD component.
const webReqBase = uint64(1) << 32

func (n *Node) handleWebRequest(r web.Request) {
	switch {
	case r.Path == "/" || r.Path == "/status":
		id := webReqBase + NextReqID()
		n.webStatus[id] = &statusRound{webReqID: r.ReqID, expected: len(n.statPorts)}
		for _, sp := range n.statPorts {
			n.ctx.Trigger(status.Request{ReqID: id}, sp)
		}
	case strings.HasPrefix(r.Path, "/get"):
		key := queryParam(r.Query, "key")
		if key == "" {
			n.respond(r.ReqID, 400, "missing ?key=")
			return
		}
		id := webReqBase + NextReqID()
		n.webOps[id] = r.ReqID
		n.ctx.Trigger(abd.GetRequest{ReqID: id, Key: key}, n.abdOuter)
	case strings.HasPrefix(r.Path, "/put"):
		key := queryParam(r.Query, "key")
		value := queryParam(r.Query, "value")
		if key == "" {
			n.respond(r.ReqID, 400, "missing ?key=")
			return
		}
		id := webReqBase + NextReqID()
		n.webOps[id] = r.ReqID
		n.ctx.Trigger(abd.PutRequest{ReqID: id, Key: key, Value: []byte(value)}, n.abdOuter)
	default:
		n.respond(r.ReqID, 404, "unknown path; try /status, /get?key=k, /put?key=k&value=v")
	}
}

func (n *Node) handleStatusResponse(s status.Response) {
	round, ok := n.webStatus[s.ReqID]
	if !ok {
		return // a monitoring-client round, not ours
	}
	round.got = append(round.got, s)
	if len(round.got) < round.expected {
		return
	}
	delete(n.webStatus, s.ReqID)
	n.respond(round.webReqID, 200, n.renderStatus(round.got))
}

func (n *Node) handleGetResponse(g abd.GetResponse) {
	webID, ok := n.webOps[g.ReqID]
	if !ok {
		return
	}
	delete(n.webOps, g.ReqID)
	switch {
	case g.Err != "":
		n.respond(webID, 500, "error: "+g.Err)
	case !g.Found:
		n.respond(webID, 404, "not found")
	default:
		n.respond(webID, 200, string(g.Value))
	}
}

func (n *Node) handlePutResponse(p abd.PutResponse) {
	webID, ok := n.webOps[p.ReqID]
	if !ok {
		return
	}
	delete(n.webOps, p.ReqID)
	if p.Err != "" {
		n.respond(webID, 500, "error: "+p.Err)
		return
	}
	n.respond(webID, 200, "ok")
}

func (n *Node) respond(webReqID uint64, code int, body string) {
	n.ctx.Trigger(web.Response{ReqID: webReqID, Status: code, Body: body}, n.webP)
}

// renderStatus renders the node status page.
func (n *Node) renderStatus(snaps []status.Response) string {
	var b strings.Builder
	fmt.Fprintf(&b, "<html><head><title>CATS node %s</title></head><body>", n.cfg.Self)
	fmt.Fprintf(&b, "<h1>CATS node %s</h1>", n.cfg.Self)
	fmt.Fprintf(&b, "<p>joined=%v replication=%d</p><ul>", n.joined, n.cfg.ReplicationDegree)
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].Component < snaps[j].Component })
	for _, s := range snaps {
		fmt.Fprintf(&b, "<li><b>%s</b>: ", s.Component)
		keys := make([]string, 0, len(s.Metrics))
		for k := range s.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for i, k := range keys {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s=%d", k, s.Metrics[k])
		}
		b.WriteString("</li>")
	}
	b.WriteString("</ul></body></html>")
	return b.String()
}

// queryParam extracts a parameter from a raw query string without
// importing net/url in the hot path (values are simple test keys).
func queryParam(query, name string) string {
	for _, kv := range strings.Split(query, "&") {
		if v, ok := strings.CutPrefix(kv, name+"="); ok {
			return v
		}
	}
	return ""
}
