package cats

import (
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/abd"
	"repro/internal/core"
	"repro/internal/ident"
	"repro/internal/network"
	"repro/internal/router"
)

// Experiment commands (the paper's system-specific operations issued by
// the experiment driver on the CATS Experiment port).

// JoinNode creates and starts a new CATS node with the given ring key.
type JoinNode struct {
	Key ident.Key
}

// FailNode crashes the alive node responsible for Key (abrupt destroy — no
// leave protocol, mirroring churn failures).
type FailNode struct {
	Key ident.Key
}

// OpLookup issues a ring lookup for Target at the alive node responsible
// for NodeKey.
type OpLookup struct {
	NodeKey ident.Key
	Target  ident.Key
}

// OpPut issues a put at the alive node responsible for NodeKey.
type OpPut struct {
	NodeKey ident.Key
	Key     string
	Value   []byte
}

// OpGet issues a get at the alive node responsible for NodeKey.
type OpGet struct {
	NodeKey ident.Key
	Key     string
}

// StartLoad launches a closed-loop workload: Clients logical clients, each
// issuing its next operation as soon as the previous one completes, until
// TotalOps operations have been issued. ReadFraction selects gets vs puts;
// values are ValueSize bytes over Keys distinct keys. Used by the
// throughput benchmarks (paper §4.1's read-intensive workload).
type StartLoad struct {
	Clients      int
	TotalOps     int
	ValueSize    int
	ReadFraction float64
	Keys         int
}

// ExperimentPortType is the CATS Experiment abstraction driven by scenario
// schedules.
var ExperimentPortType = core.NewPortType("CATSExperiment",
	core.Request[JoinNode](),
	core.Request[FailNode](),
	core.Request[OpLookup](),
	core.Request[OpPut](),
	core.Request[OpGet](),
	core.Request[StartLoad](),
)

// simReqBase keeps simulator-issued request IDs disjoint from every other
// client's ID space.
const simReqBase = uint64(1) << 62

// Metrics aggregates experiment outcomes for harness reporting.
type Metrics struct {
	Joins, Fails          uint64
	GetsOK, GetsFailed    uint64
	PutsOK, PutsFailed    uint64
	Lookups, LookupsEmpty uint64
	Skipped               uint64 // commands against no alive node
	OpLatencies           []time.Duration

	// Closed-loop load results (StartLoad).
	LoadDone       uint64
	LoadStart      time.Time
	LoadEnd        time.Time
	LoadLatencySum time.Duration
}

// LoadThroughput returns completed load operations per second of virtual
// time.
func (m *Metrics) LoadThroughput() float64 {
	d := m.LoadEnd.Sub(m.LoadStart)
	if d <= 0 || m.LoadDone == 0 {
		return 0
	}
	return float64(m.LoadDone) / d.Seconds()
}

// LatencyStats summarizes the recorded operation latencies.
func (m *Metrics) LatencyStats() (n int, mean, min, max time.Duration) {
	if len(m.OpLatencies) == 0 {
		return 0, 0, 0, 0
	}
	min, max = m.OpLatencies[0], m.OpLatencies[0]
	var sum time.Duration
	for _, d := range m.OpLatencies {
		sum += d
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	return len(m.OpLatencies), sum / time.Duration(len(m.OpLatencies)), min, max
}

// peerHandle tracks one deployed node.
type peerHandle struct {
	ref    ident.NodeRef
	comp   *core.Component
	peer   *Peer
	putget *core.Port
	route  *core.Port
}

// pendingOp correlates an issued operation with its response.
type pendingOp struct {
	kind  string
	key   string
	value string
	start time.Time
	load  bool // part of a closed-loop StartLoad workload
}

// OpRecord is one recorded client operation (RecordOps mode) with
// invocation/response timestamps from the environment clock — virtual
// time under simulation — in the form the linearizability checker wants.
type OpRecord struct {
	Kind  string // "put" | "get"
	Key   string
	Value string // value written, or value a get returned
	OK    bool   // response carried no error
	Found bool   // get only: key existed
	Start time.Time
	End   time.Time
}

// Simulator is the paper's "CATS Simulator" host component: it provides
// the CATS Experiment port and dynamically creates, destroys, and drives
// whole CATS nodes inside one process — exercising Kompics' dynamic
// reconfiguration and hierarchical composition. The same Simulator runs
// under the deterministic simulation environment and the real-time
// loopback environment.
type Simulator struct {
	Env      Env
	Defaults NodeConfig
	// MaxSeeds bounds how many existing nodes a joiner learns (default 3).
	MaxSeeds int
	// RecordOps captures every explicit put/get (not closed-loop load ops)
	// as an OpRecord for post-run linearizability checking.
	RecordOps bool
	// DataDirRoot, when set, gives every created node a durable store at
	// <DataDirRoot>/node-<key> (WAL policy from Defaults). A node joining
	// with a key that has run here before — e.g. after a whole-process
	// restart — recovers its registers from that directory before serving.
	DataDirRoot string
	// OpSink, when set (requires RecordOps), observes each explicit op
	// twice: at invocation with zero End, and at resolution with the full
	// record. The recovery scenario streams these into an fsynced on-disk
	// history log so a mid-run SIGKILL cannot erase an acked write's
	// record.
	OpSink func(rec OpRecord)

	ctx *core.Ctx
	exp *core.Port

	// mu guards peers and metrics: handlers mutate them on a scheduler
	// worker while real-time experiment drivers poll Metrics/AliveNodes/
	// Peer from outside the runtime. pending and load are touched only by
	// handlers (component-serial) and need no lock.
	mu      sync.Mutex
	peers   map[ident.Key]*peerHandle
	metrics Metrics
	history []OpRecord

	pending map[uint64]*pendingOp

	// Closed-loop load state.
	load struct {
		active       bool
		left         int
		valueSize    int
		readFraction float64
		keys         int
	}
}

// NewSimulator creates a simulator host definition. Defaults provides the
// per-node configuration template (Self and Seeds are filled in per node).
func NewSimulator(env Env, defaults NodeConfig) *Simulator {
	return &Simulator{
		Env:      env,
		Defaults: defaults,
		MaxSeeds: 3,
		peers:    make(map[ident.Key]*peerHandle),
		pending:  make(map[uint64]*pendingOp),
	}
}

var _ core.Definition = (*Simulator)(nil)

// Setup declares the experiment port.
func (s *Simulator) Setup(ctx *core.Ctx) {
	s.ctx = ctx
	s.exp = ctx.Provides(ExperimentPortType)
	core.Subscribe(ctx, s.exp, s.handleJoin)
	core.Subscribe(ctx, s.exp, s.handleFail)
	core.Subscribe(ctx, s.exp, s.handleLookup)
	core.Subscribe(ctx, s.exp, s.handlePut)
	core.Subscribe(ctx, s.exp, s.handleGet)
	core.Subscribe(ctx, s.exp, s.handleStartLoad)
}

// Metrics returns a copy of the experiment counters collected so far.
func (s *Simulator) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.metrics
	m.OpLatencies = append([]time.Duration(nil), s.metrics.OpLatencies...)
	return m
}

// bump applies one metrics mutation under the lock.
func (s *Simulator) bump(f func(m *Metrics)) {
	s.mu.Lock()
	f(&s.metrics)
	s.mu.Unlock()
}

// OpHistory returns the completed operations captured under RecordOps, in
// completion order.
func (s *Simulator) OpHistory() []OpRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]OpRecord(nil), s.history...)
}

// UnresolvedOps returns the recorded operations still awaiting a response
// (e.g. their coordinator crashed). Their End is zero: a write among them
// may or may not have taken effect, so a linearizability caller must treat
// it as unconstrained in time.
func (s *Simulator) UnresolvedOps() []OpRecord {
	if !s.RecordOps {
		return nil
	}
	out := []OpRecord{}
	for _, op := range s.pending {
		if op.load || (op.kind != "put" && op.kind != "get") {
			continue
		}
		out = append(out, OpRecord{Kind: op.kind, Key: op.key, Value: op.value, Start: op.start})
	}
	// Map iteration order is random; sort so callers see a stable history.
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		if out[i].Key != out[j].Key {
			return out[i].Key < out[j].Key
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// record appends one completed operation under RecordOps.
func (s *Simulator) record(r OpRecord) {
	if !s.RecordOps {
		return
	}
	s.mu.Lock()
	s.history = append(s.history, r)
	s.mu.Unlock()
	if s.OpSink != nil {
		s.OpSink(r)
	}
}

// sinkInvocation streams an op's invocation to the OpSink (zero End
// marks it in-flight).
func (s *Simulator) sinkInvocation(kind, key, value string, start time.Time) {
	if !s.RecordOps || s.OpSink == nil {
		return
	}
	s.OpSink(OpRecord{Kind: kind, Key: key, Value: value, Start: start})
}

// AliveCount returns the number of currently deployed nodes.
func (s *Simulator) AliveCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.peers)
}

// AliveNodes returns the deployed node references, sorted by key.
func (s *Simulator) AliveNodes() []ident.NodeRef {
	s.mu.Lock()
	out := make([]ident.NodeRef, 0, len(s.peers))
	for _, h := range s.peers {
		out = append(out, h.ref)
	}
	s.mu.Unlock()
	ident.SortByKey(out)
	return out
}

// peerOf looks up a deployed node's handle by exact key.
func (s *Simulator) peerOf(key ident.Key) *peerHandle {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peers[key]
}

// Peer returns the handle of the node responsible for key (tests).
func (s *Simulator) Peer(key ident.Key) (*Peer, bool) {
	h := s.resolve(key)
	if h == nil {
		return nil, false
	}
	return h.peer, true
}

// addrOf derives a unique in-process address for a node key.
func addrOf(key ident.Key) network.Address {
	return network.Address{Host: fmt.Sprintf("cats-%d", uint64(key)), Port: 1}
}

// resolve picks the alive node responsible for key: the one with the
// smallest key >= key, wrapping (so scenario-drawn node IDs always hit an
// alive node).
func (s *Simulator) resolve(key ident.Key) *peerHandle {
	refs := s.AliveNodes()
	if len(refs) == 0 {
		return nil
	}
	n := ident.SuccessorOf(refs, key)
	return s.peerOf(n.Key)
}

func (s *Simulator) handleJoin(j JoinNode) {
	if s.peerOf(j.Key) != nil {
		s.bump(func(m *Metrics) { m.Skipped++ })
		return
	}
	self := ident.NodeRef{Key: j.Key, Addr: addrOf(j.Key)}

	// Pick up to MaxSeeds existing nodes as ring contacts.
	alive := s.AliveNodes()
	maxSeeds := s.MaxSeeds
	if maxSeeds <= 0 {
		maxSeeds = 3
	}
	var seeds []ident.NodeRef
	if len(alive) > 0 {
		perm := s.ctx.Rand().Perm(len(alive))
		for _, i := range perm {
			seeds = append(seeds, alive[i])
			if len(seeds) >= maxSeeds {
				break
			}
		}
	}

	cfg := s.Defaults
	cfg.Self = self
	cfg.Seeds = seeds
	if s.DataDirRoot != "" {
		cfg.DataDir = filepath.Join(s.DataDirRoot, fmt.Sprintf("node-%d", uint64(j.Key)))
	}
	peer := NewPeer(s.Env, cfg)
	comp := s.ctx.Create(fmt.Sprintf("peer-%d", uint64(j.Key)), peer)
	h := &peerHandle{
		ref:    self,
		comp:   comp,
		peer:   peer,
		putget: comp.Provided(abd.PutGetPortType),
		route:  comp.Provided(router.PortType),
	}
	core.Subscribe(s.ctx, h.putget, s.handleGetResponse)
	core.Subscribe(s.ctx, h.putget, s.handlePutResponse)
	core.Subscribe(s.ctx, h.route, s.handleFound)
	s.mu.Lock()
	s.peers[j.Key] = h
	s.metrics.Joins++
	s.mu.Unlock()
	s.ctx.Start(comp)
}

func (s *Simulator) handleFail(f FailNode) {
	h := s.resolve(f.Key)
	if h == nil {
		s.bump(func(m *Metrics) { m.Skipped++ })
		return
	}
	s.mu.Lock()
	delete(s.peers, h.ref.Key)
	s.metrics.Fails++
	s.mu.Unlock()
	s.ctx.Destroy(h.comp) // crash: queues dropped, no leave protocol
}

func (s *Simulator) handleLookup(l OpLookup) {
	h := s.resolve(l.NodeKey)
	if h == nil {
		s.bump(func(m *Metrics) { m.Skipped++ })
		return
	}
	id := simReqBase + NextReqID()
	s.pending[id] = &pendingOp{kind: "lookup", start: s.ctx.Now()}
	s.ctx.Trigger(router.FindSuccessor{
		ReqID: id,
		Key:   l.Target,
		Count: s.Defaults.ReplicationDegree,
	}, h.route)
}

func (s *Simulator) handlePut(p OpPut) {
	h := s.resolve(p.NodeKey)
	if h == nil {
		s.bump(func(m *Metrics) { m.Skipped++ })
		return
	}
	id := simReqBase + NextReqID()
	now := s.ctx.Now()
	s.pending[id] = &pendingOp{kind: "put", key: p.Key, value: string(p.Value), start: now}
	s.sinkInvocation("put", p.Key, string(p.Value), now)
	s.ctx.Trigger(abd.PutRequest{ReqID: id, Key: p.Key, Value: p.Value}, h.putget)
}

func (s *Simulator) handleGet(g OpGet) {
	h := s.resolve(g.NodeKey)
	if h == nil {
		s.bump(func(m *Metrics) { m.Skipped++ })
		return
	}
	id := simReqBase + NextReqID()
	now := s.ctx.Now()
	s.pending[id] = &pendingOp{kind: "get", key: g.Key, start: now}
	s.sinkInvocation("get", g.Key, "", now)
	s.ctx.Trigger(abd.GetRequest{ReqID: id, Key: g.Key}, h.putget)
}

// handleStartLoad begins the closed-loop workload: Clients operations are
// issued immediately; every completion launches the next until TotalOps.
func (s *Simulator) handleStartLoad(l StartLoad) {
	if s.AliveCount() == 0 || l.Clients <= 0 || l.TotalOps <= 0 {
		s.bump(func(m *Metrics) { m.Skipped++ })
		return
	}
	s.load.active = true
	s.load.left = l.TotalOps
	s.load.valueSize = l.ValueSize
	if s.load.valueSize <= 0 {
		s.load.valueSize = 1024
	}
	s.load.readFraction = l.ReadFraction
	s.load.keys = l.Keys
	if s.load.keys <= 0 {
		s.load.keys = 256
	}
	s.bump(func(m *Metrics) {
		m.LoadStart = s.ctx.Now()
		m.LoadEnd = m.LoadStart
	})
	clients := l.Clients
	if clients > l.TotalOps {
		clients = l.TotalOps
	}
	for i := 0; i < clients; i++ {
		s.issueLoadOp()
	}
}

// issueLoadOp sends one closed-loop operation to a random alive node.
func (s *Simulator) issueLoadOp() {
	if s.load.left <= 0 {
		return
	}
	s.load.left--
	refs := s.AliveNodes()
	h := s.peerOf(refs[s.ctx.Rand().Intn(len(refs))].Key)
	key := fmt.Sprintf("load-%d", s.ctx.Rand().Intn(s.load.keys))
	id := simReqBase + NextReqID()
	if s.ctx.Rand().Float64() < s.load.readFraction {
		s.pending[id] = &pendingOp{kind: "get", start: s.ctx.Now(), load: true}
		s.ctx.Trigger(abd.GetRequest{ReqID: id, Key: key}, h.putget)
	} else {
		s.pending[id] = &pendingOp{kind: "put", start: s.ctx.Now(), load: true}
		s.ctx.Trigger(abd.PutRequest{ReqID: id, Key: key, Value: make([]byte, s.load.valueSize)}, h.putget)
	}
}

// loadOpDone records a completed closed-loop operation and chains the
// next.
func (s *Simulator) loadOpDone(op *pendingOp) {
	now := s.ctx.Now()
	s.bump(func(m *Metrics) {
		m.LoadDone++
		m.LoadEnd = now
		m.LoadLatencySum += now.Sub(op.start)
		m.OpLatencies = append(m.OpLatencies, now.Sub(op.start))
	})
	s.issueLoadOp()
}

func (s *Simulator) handleFound(f router.FoundSuccessor) {
	op, ok := s.pending[f.ReqID]
	if !ok {
		return
	}
	delete(s.pending, f.ReqID)
	now := s.ctx.Now()
	s.bump(func(m *Metrics) {
		m.Lookups++
		if len(f.Group) == 0 {
			m.LookupsEmpty++
		}
		m.OpLatencies = append(m.OpLatencies, now.Sub(op.start))
	})
}

func (s *Simulator) handleGetResponse(g abd.GetResponse) {
	op, ok := s.pending[g.ReqID]
	if !ok || op.kind != "get" {
		return
	}
	delete(s.pending, g.ReqID)
	s.bump(func(m *Metrics) {
		if g.Err != "" {
			m.GetsFailed++
		} else {
			m.GetsOK++
		}
	})
	if op.load {
		s.loadOpDone(op)
		return
	}
	now := s.ctx.Now()
	s.record(OpRecord{Kind: "get", Key: op.key, Value: string(g.Value), OK: g.Err == "",
		Found: g.Found, Start: op.start, End: now})
	s.bump(func(m *Metrics) { m.OpLatencies = append(m.OpLatencies, now.Sub(op.start)) })
}

func (s *Simulator) handlePutResponse(p abd.PutResponse) {
	op, ok := s.pending[p.ReqID]
	if !ok || op.kind != "put" {
		return
	}
	delete(s.pending, p.ReqID)
	s.bump(func(m *Metrics) {
		if p.Err != "" {
			m.PutsFailed++
		} else {
			m.PutsOK++
		}
	})
	if op.load {
		s.loadOpDone(op)
		return
	}
	now := s.ctx.Now()
	s.record(OpRecord{Kind: "put", Key: op.key, Value: op.value, OK: p.Err == "",
		Start: op.start, End: now})
	s.bump(func(m *Metrics) { m.OpLatencies = append(m.OpLatencies, now.Sub(op.start)) })
}
