package cats

import (
	"net"
	"testing"
	"time"

	"repro/internal/abd"
	"repro/internal/core"
	"repro/internal/ident"
	"repro/internal/network"
)

// freeTCPAddr reserves a loopback port from the OS.
func freeTCPAddr(t *testing.T) network.Address {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := ln.Addr().(*net.TCPAddr).Port
	_ = ln.Close()
	return network.Address{Host: "127.0.0.1", Port: uint16(port)}
}

// tcpClient drives PutGet against a peer over channels.
type tcpClient struct {
	target *core.Port
	ctx    *core.Ctx
	gets   chan abd.GetResponse
	puts   chan abd.PutResponse
}

func (c *tcpClient) Setup(ctx *core.Ctx) {
	c.ctx = ctx
	c.target = ctx.Requires(abd.PutGetPortType)
	core.Subscribe(ctx, c.target, func(g abd.GetResponse) { c.gets <- g })
	core.Subscribe(ctx, c.target, func(p abd.PutResponse) { c.puts <- p })
}

// TestProductionTCPCluster runs a 3-node CATS cluster over real TCP
// sockets on localhost — the full production path: dial-on-demand
// connection management, length-prefixed framing, gob serialization —
// and performs linearizable puts and gets across coordinators.
func TestProductionTCPCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets")
	}
	const n = 3
	refs := make([]ident.NodeRef, n)
	for i := range refs {
		refs[i] = ident.NodeRef{Key: ident.Key(uint64(i+1) << 60), Addr: freeTCPAddr(t)}
	}

	rt := core.New(core.WithFaultPolicy(core.LogAndContinue))
	defer rt.Shutdown()
	env := TCPEnv{}
	peers := make([]*Peer, n)
	clients := make([]*tcpClient, n)
	rt.MustBootstrap("Main", core.SetupFunc(func(ctx *core.Ctx) {
		for i := range refs {
			cfg := NodeConfig{
				Self:              refs[i],
				ReplicationDegree: 3,
				FDInterval:        200 * time.Millisecond,
				StabilizePeriod:   100 * time.Millisecond,
				CyclonPeriod:      200 * time.Millisecond,
				OpTimeout:         2 * time.Second,
			}
			if i > 0 {
				cfg.Seeds = []ident.NodeRef{refs[0]}
			}
			peers[i] = NewPeer(env, cfg)
			comp := ctx.Create(refs[i].Addr.String(), peers[i])
			clients[i] = &tcpClient{
				gets: make(chan abd.GetResponse, 4),
				puts: make(chan abd.PutResponse, 4),
			}
			cl := ctx.Create("client-"+refs[i].Addr.String(), clients[i])
			ctx.Connect(comp.Provided(abd.PutGetPortType), cl.Required(abd.PutGetPortType))
		}
	}))

	// Wait for ring convergence over real sockets.
	deadline := time.Now().Add(30 * time.Second)
	for {
		joined := 0
		for _, p := range peers {
			if p.Node != nil && p.Node.Ring.Joined() && len(p.Node.Ring.Succs()) > 0 {
				joined++
			}
		}
		if joined == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ring did not converge over TCP: %d/%d joined", joined, n)
		}
		time.Sleep(50 * time.Millisecond)
	}
	time.Sleep(time.Second) // membership tables

	// Put via node 0, get via node 2.
	clients[0].ctx.Trigger(abd.PutRequest{ReqID: NextReqID(), Key: "tcp-key", Value: []byte("over-sockets")}, clients[0].target)
	select {
	case resp := <-clients[0].puts:
		if resp.Err != "" {
			t.Fatalf("put: %s", resp.Err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("put timed out")
	}
	clients[2].ctx.Trigger(abd.GetRequest{ReqID: NextReqID(), Key: "tcp-key"}, clients[2].target)
	select {
	case resp := <-clients[2].gets:
		if resp.Err != "" || !resp.Found || string(resp.Value) != "over-sockets" {
			t.Fatalf("get: %+v", resp)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("get timed out")
	}
}
