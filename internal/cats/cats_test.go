package cats

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ident"
	"repro/internal/simulation"
)

// simCluster is a deterministic whole-system CATS deployment in one
// simulation.
type simCluster struct {
	sim  *simulation.Simulation
	emu  *simulation.NetworkEmulator
	host *Simulator
	exp  *core.Port // experiment port (outer)
}

// fastNodeConfig returns node timings suited to simulated small clusters.
func fastNodeConfig() NodeConfig {
	return NodeConfig{
		ReplicationDegree: 3,
		SuccessorListSize: 4,
		FDInterval:        100 * time.Millisecond,
		StabilizePeriod:   200 * time.Millisecond,
		CyclonPeriod:      300 * time.Millisecond,
		OpTimeout:         500 * time.Millisecond,
	}
}

func newSimCluster(t *testing.T, seed int64, cfg NodeConfig) *simCluster {
	t.Helper()
	sim := simulation.New(seed)
	emu := simulation.NewNetworkEmulator(sim,
		simulation.WithLatency(simulation.UniformLatency(time.Millisecond, 5*time.Millisecond)))
	host := NewSimulator(SimEnv{Sim: sim, Emu: emu}, cfg)
	var exp *core.Port
	sim.Runtime().MustBootstrap("CatsSimulationMain", core.SetupFunc(func(ctx *core.Ctx) {
		c := ctx.Create("simulator", host)
		exp = c.Provided(ExperimentPortType)
	}))
	sim.Settle()
	return &simCluster{sim: sim, emu: emu, host: host, exp: exp}
}

// join boots n nodes with distinct spaced keys and runs the simulation
// until the ring converges.
func (c *simCluster) join(t *testing.T, n int) []ident.Key {
	t.Helper()
	keys := make([]ident.Key, 0, n)
	for i := 0; i < n; i++ {
		k := ident.Key(uint64(i)*1000 + 17)
		keys = append(keys, k)
		if err := core.TriggerOn(c.exp, JoinNode{Key: k}); err != nil {
			t.Fatal(err)
		}
		c.sim.Run(time.Second) // stagger joins
	}
	c.sim.Run(20 * time.Second) // converge
	return keys
}

// requireConverged asserts every node's successor matches the global ring
// order.
func (c *simCluster) requireConverged(t *testing.T) {
	t.Helper()
	refs := c.host.AliveNodes()
	if len(refs) < 2 {
		return
	}
	for i, ref := range refs {
		h := c.host.peers[ref.Key]
		succs := h.peer.Node.Ring.Succs()
		if len(succs) == 0 {
			t.Fatalf("node %s has no successors", ref)
		}
		want := refs[(i+1)%len(refs)]
		if succs[0] != want {
			t.Fatalf("node %s successor = %s, want %s (ring not converged)", ref, succs[0], want)
		}
		if !h.peer.Node.Ring.Joined() {
			t.Fatalf("node %s not joined", ref)
		}
	}
}

func TestClusterBootAndRingConvergence(t *testing.T) {
	c := newSimCluster(t, 42, fastNodeConfig())
	c.join(t, 8)
	if c.host.AliveCount() != 8 {
		t.Fatalf("alive %d, want 8", c.host.AliveCount())
	}
	c.requireConverged(t)
	// Every router's membership table must hold all other nodes.
	for _, ref := range c.host.AliveNodes() {
		h := c.host.peers[ref.Key]
		if got := h.peer.Node.Router.TableSize(); got != 7 {
			t.Fatalf("node %s router table %d, want 7", ref, got)
		}
	}
}

func TestPutGetAcrossNodes(t *testing.T) {
	c := newSimCluster(t, 7, fastNodeConfig())
	keys := c.join(t, 5)
	c.requireConverged(t)

	// Put through one node, get through every node.
	if err := core.TriggerOn(c.exp, OpPut{NodeKey: keys[0], Key: "color", Value: []byte("indigo")}); err != nil {
		t.Fatal(err)
	}
	c.sim.Run(5 * time.Second)
	m := c.host.Metrics()
	if m.PutsOK != 1 {
		t.Fatalf("puts ok %d (failed %d), want 1", m.PutsOK, m.PutsFailed)
	}
	for _, k := range keys {
		if err := core.TriggerOn(c.exp, OpGet{NodeKey: k, Key: "color"}); err != nil {
			t.Fatal(err)
		}
	}
	c.sim.Run(5 * time.Second)
	m = c.host.Metrics()
	if m.GetsOK != 5 {
		t.Fatalf("gets ok %d (failed %d), want 5", m.GetsOK, m.GetsFailed)
	}

	// The value is replicated on the responsible group: at least a quorum
	// of stores hold it.
	replicas := 0
	for _, ref := range c.host.AliveNodes() {
		h := c.host.peers[ref.Key]
		if _, _, ok := h.peer.Node.ABD.Store().Read("color"); ok {
			replicas++
		}
	}
	if replicas < 2 {
		t.Fatalf("value on %d replicas, want >= 2", replicas)
	}
}

func TestGetMissingKeyNotFound(t *testing.T) {
	c := newSimCluster(t, 9, fastNodeConfig())
	keys := c.join(t, 3)
	if err := core.TriggerOn(c.exp, OpGet{NodeKey: keys[1], Key: "ghost"}); err != nil {
		t.Fatal(err)
	}
	c.sim.Run(5 * time.Second)
	m := c.host.Metrics()
	if m.GetsOK != 1 {
		t.Fatalf("get of missing key should succeed with not-found: %+v", m)
	}
}

func TestRingRepairsAfterCrash(t *testing.T) {
	c := newSimCluster(t, 11, fastNodeConfig())
	keys := c.join(t, 6)
	c.requireConverged(t)

	// Crash one node; the ring must reconverge without it.
	if err := core.TriggerOn(c.exp, FailNode{Key: keys[2]}); err != nil {
		t.Fatal(err)
	}
	c.sim.Run(30 * time.Second)
	if c.host.AliveCount() != 5 {
		t.Fatalf("alive %d, want 5", c.host.AliveCount())
	}
	c.requireConverged(t)
}

func TestDataSurvivesCrashWithReplication(t *testing.T) {
	c := newSimCluster(t, 13, fastNodeConfig())
	keys := c.join(t, 6)
	c.requireConverged(t)

	if err := core.TriggerOn(c.exp, OpPut{NodeKey: keys[0], Key: "durable", Value: []byte("v1")}); err != nil {
		t.Fatal(err)
	}
	c.sim.Run(5 * time.Second)

	// Crash the node responsible for the key's successor position.
	h := c.host.resolve(ident.KeyOfString("durable"))
	if h == nil {
		t.Fatal("no responsible node")
	}
	if err := core.TriggerOn(c.exp, FailNode{Key: h.ref.Key}); err != nil {
		t.Fatal(err)
	}
	c.sim.Run(30 * time.Second)

	// A read from any surviving node still returns the value (quorum of
	// the original group survives).
	survivor := c.host.AliveNodes()[0]
	if err := core.TriggerOn(c.exp, OpGet{NodeKey: survivor.Key, Key: "durable"}); err != nil {
		t.Fatal(err)
	}
	c.sim.Run(10 * time.Second)
	m := c.host.Metrics()
	if m.GetsOK != 1 || m.GetsFailed != 0 {
		t.Fatalf("get after crash: %+v", m)
	}
}

func TestLookupResolvesGroups(t *testing.T) {
	c := newSimCluster(t, 17, fastNodeConfig())
	keys := c.join(t, 5)
	c.requireConverged(t)
	for i := 0; i < 10; i++ {
		if err := core.TriggerOn(c.exp, OpLookup{NodeKey: keys[i%len(keys)], Target: ident.Key(i * 777)}); err != nil {
			t.Fatal(err)
		}
	}
	c.sim.Run(5 * time.Second)
	m := c.host.Metrics()
	if m.Lookups != 10 || m.LookupsEmpty != 0 {
		t.Fatalf("lookups %d (empty %d), want 10 (0)", m.Lookups, m.LookupsEmpty)
	}
}

func TestSequentialReadsObserveLatestWrite(t *testing.T) {
	c := newSimCluster(t, 19, fastNodeConfig())
	keys := c.join(t, 5)
	c.requireConverged(t)

	// A chain of writes through different coordinators; after each write
	// completes, a read through yet another coordinator must see it.
	for i := 0; i < 10; i++ {
		writer := keys[i%len(keys)]
		reader := keys[(i+2)%len(keys)]
		val := []byte(fmt.Sprintf("v%d", i))
		if err := core.TriggerOn(c.exp, OpPut{NodeKey: writer, Key: "chain", Value: val}); err != nil {
			t.Fatal(err)
		}
		c.sim.Run(3 * time.Second)
		if err := core.TriggerOn(c.exp, OpGet{NodeKey: reader, Key: "chain"}); err != nil {
			t.Fatal(err)
		}
		c.sim.Run(3 * time.Second)
	}
	m := c.host.Metrics()
	if m.PutsOK != 10 || m.GetsOK != 10 || m.PutsFailed+m.GetsFailed > 0 {
		t.Fatalf("chain metrics: %+v", m)
	}
	// Verify the final version on the replicas is the last write.
	h := c.host.resolve(ident.KeyOfString("chain"))
	_, val, ok := h.peer.Node.ABD.Store().Read("chain")
	if !ok || string(val) != "v9" {
		t.Fatalf("final stored value %q ok=%v, want v9", val, ok)
	}
}

func TestDeterministicClusterRuns(t *testing.T) {
	run := func(seed int64) Metrics {
		c := newSimCluster(t, seed, fastNodeConfig())
		keys := c.join(t, 5)
		for i := 0; i < 20; i++ {
			_ = core.TriggerOn(c.exp, OpPut{NodeKey: keys[i%5], Key: fmt.Sprintf("k%d", i), Value: []byte("v")})
		}
		c.sim.Run(10 * time.Second)
		for i := 0; i < 20; i++ {
			_ = core.TriggerOn(c.exp, OpGet{NodeKey: keys[(i+1)%5], Key: fmt.Sprintf("k%d", i)})
		}
		c.sim.Run(10 * time.Second)
		return c.host.Metrics()
	}
	m1 := run(123)
	m2 := run(123)
	if m1.PutsOK != m2.PutsOK || m1.GetsOK != m2.GetsOK || len(m1.OpLatencies) != len(m2.OpLatencies) {
		t.Fatalf("same seed, different outcomes: %+v vs %+v", m1, m2)
	}
	for i := range m1.OpLatencies {
		if m1.OpLatencies[i] != m2.OpLatencies[i] {
			t.Fatalf("latency trace diverges at %d: %v vs %v", i, m1.OpLatencies[i], m2.OpLatencies[i])
		}
	}
	if m1.PutsOK != 20 || m1.GetsOK != 20 {
		t.Fatalf("ops failed: %+v", m1)
	}
}
