package cats

import (
	"strings"
	"testing"
	"time"

	"repro/internal/bootstrap"
	"repro/internal/core"
	"repro/internal/ident"
	"repro/internal/monitor"
	"repro/internal/network"
	"repro/internal/simulation"
	"repro/internal/timer"
	"repro/internal/web"
)

// webProbe drives a node's Web port and records responses.
type webProbe struct {
	target *core.Port // required Web (inner)
	ctx    *core.Ctx
	resps  []web.Response
}

func (p *webProbe) Setup(ctx *core.Ctx) {
	p.ctx = ctx
	p.target = ctx.Requires(web.PortType)
	core.Subscribe(ctx, p.target, func(r web.Response) { p.resps = append(p.resps, r) })
}

func TestNodeWebStatusPage(t *testing.T) {
	c, probe := newWebWorldViaBoot(t)
	probe.ctx.Trigger(web.Request{ReqID: 1, Path: "/status"}, probe.target)
	c.sim.Run(time.Second)
	if len(probe.resps) != 1 {
		t.Fatalf("responses: %d", len(probe.resps))
	}
	body := probe.resps[0].Body
	for _, want := range []string{"CATS node", "ping-fd", "cyclon", "ring", "one-hop-router", "consistent-abd", "joined=true"} {
		if !strings.Contains(body, want) {
			t.Fatalf("status page missing %q:\n%s", want, body)
		}
	}
}

func TestNodeWebPutGet(t *testing.T) {
	c, probe := newWebWorldViaBoot(t)
	probe.ctx.Trigger(web.Request{ReqID: 1, Path: "/put", Query: "key=color&value=teal"}, probe.target)
	c.sim.Run(2 * time.Second)
	if len(probe.resps) != 1 || probe.resps[0].Status != 200 || probe.resps[0].Body != "ok" {
		t.Fatalf("put response: %+v", probe.resps)
	}
	probe.ctx.Trigger(web.Request{ReqID: 2, Path: "/get", Query: "key=color"}, probe.target)
	c.sim.Run(2 * time.Second)
	if len(probe.resps) != 2 || probe.resps[1].Body != "teal" {
		t.Fatalf("get response: %+v", probe.resps)
	}
}

func TestNodeWebErrors(t *testing.T) {
	c, probe := newWebWorldViaBoot(t)
	probe.ctx.Trigger(web.Request{ReqID: 1, Path: "/get", Query: "key=nope"}, probe.target)
	c.sim.Run(2 * time.Second)
	if probe.resps[0].Status != 404 {
		t.Fatalf("missing key: %+v", probe.resps[0])
	}
	probe.ctx.Trigger(web.Request{ReqID: 2, Path: "/get", Query: ""}, probe.target)
	c.sim.Run(time.Second)
	if probe.resps[1].Status != 400 {
		t.Fatalf("missing param: %+v", probe.resps[1])
	}
	probe.ctx.Trigger(web.Request{ReqID: 3, Path: "/bogus"}, probe.target)
	c.sim.Run(time.Second)
	if probe.resps[2].Status != 404 {
		t.Fatalf("bogus path: %+v", probe.resps[2])
	}
	probe.ctx.Trigger(web.Request{ReqID: 4, Path: "/put", Query: "value=x"}, probe.target)
	c.sim.Run(time.Second)
	if probe.resps[3].Status != 400 {
		t.Fatalf("put without key: %+v", probe.resps[3])
	}
}

// newWebWorldViaBoot rebuilds the web world without relying on root-ctx
// capture: the probe is created inside the bootstrap Setup.
func newWebWorldViaBoot(t *testing.T) (*simCluster, *webProbe) {
	t.Helper()
	sim := simulation.New(33)
	emu := simulation.NewNetworkEmulator(sim,
		simulation.WithLatency(simulation.UniformLatency(time.Millisecond, 5*time.Millisecond)))
	host := NewSimulator(SimEnv{Sim: sim, Emu: emu}, fastNodeConfig())
	probe := &webProbe{}
	var exp *core.Port
	var rootCtx *core.Ctx
	var probeC *core.Component
	sim.Runtime().MustBootstrap("Main", core.SetupFunc(func(ctx *core.Ctx) {
		rootCtx = ctx
		c := ctx.Create("simulator", host)
		exp = c.Provided(ExperimentPortType)
		probeC = ctx.Create("probe", probe)
	}))
	sim.Settle()
	c := &simCluster{sim: sim, emu: emu, host: host, exp: exp}
	keys := c.join(t, 3)
	h := c.host.peers[keys[0]]
	rootCtx.Connect(h.comp.Provided(web.PortType), probeC.Required(web.PortType))
	c.sim.Run(time.Second)
	return c, probe
}

// TestBootstrapServerJoinFlow deploys nodes that discover their seeds via
// the bootstrap service instead of static configuration.
func TestBootstrapServerJoinFlow(t *testing.T) {
	sim := simulation.New(55)
	emu := simulation.NewNetworkEmulator(sim,
		simulation.WithLatency(simulation.ConstantLatency(2*time.Millisecond)))
	bsAddr := network.Address{Host: "bootstrap", Port: 1}

	cfg := fastNodeConfig()
	cfg.BootstrapServer = bsAddr

	var peers []*Peer
	var bsrv *bootstrap.Server
	sim.Runtime().MustBootstrap("Main", core.SetupFunc(func(ctx *core.Ctx) {
		// Bootstrap server with its own transport and timer.
		tr := ctx.Create("bs-net", emu.Transport(bsAddr))
		tm := ctx.Create("bs-timer", simulation.NewTimer(sim))
		bsrv = bootstrap.NewServer(bootstrap.ServerConfig{Self: bsAddr, EvictAfter: 10 * time.Second})
		srvC := ctx.Create("bs", bsrv)
		ctx.Connect(srvC.Required(network.PortType), tr.Provided(network.PortType))
		ctx.Connect(srvC.Required(timer.PortType), tm.Provided(timer.PortType))

		for i := 0; i < 4; i++ {
			c := cfg
			c.Self = ident.NodeRef{
				Key:  ident.Key(uint64(i+1) << 60),
				Addr: network.Address{Host: "node", Port: uint16(i + 1)},
			}
			p := NewPeer(SimEnv{Sim: sim, Emu: emu}, c)
			peers = append(peers, p)
			ctx.Create(c.Self.Addr.String(), p)
		}
	}))
	sim.Run(60 * time.Second)

	joined := 0
	for _, p := range peers {
		if p.Node.Ring.Joined() {
			joined++
		}
	}
	if joined != 4 {
		t.Fatalf("joined %d of 4 via bootstrap service", joined)
	}
	if bsrv.AliveCount() != 4 {
		t.Fatalf("bootstrap server tracks %d nodes, want 4", bsrv.AliveCount())
	}
	// The ring converged: every node's successor list is non-empty and
	// consistent with the global order.
	for i, p := range peers {
		succs := p.Node.Ring.Succs()
		if len(succs) == 0 {
			t.Fatalf("node %d has no successors", i)
		}
	}
}

// TestMonitorReportingFlow deploys nodes with a monitoring server and
// checks the global view fills with component snapshots.
func TestMonitorReportingFlow(t *testing.T) {
	sim := simulation.New(66)
	emu := simulation.NewNetworkEmulator(sim,
		simulation.WithLatency(simulation.ConstantLatency(2*time.Millisecond)))
	monAddr := network.Address{Host: "monitor", Port: 1}

	cfg := fastNodeConfig()
	cfg.MonitorServer = monAddr
	cfg.MonitorPeriod = time.Second

	var msrv *monitor.Server
	sim.Runtime().MustBootstrap("Main", core.SetupFunc(func(ctx *core.Ctx) {
		tr := ctx.Create("mon-net", emu.Transport(monAddr))
		msrv = monitor.NewServer(monitor.ServerConfig{Self: monAddr, ExpireAfter: time.Minute})
		srvC := ctx.Create("mon", msrv)
		ctx.Connect(srvC.Required(network.PortType), tr.Provided(network.PortType))

		for i := 0; i < 2; i++ {
			c := cfg
			c.Self = ident.NodeRef{
				Key:  ident.Key(uint64(i+1) << 60),
				Addr: network.Address{Host: "node", Port: uint16(i + 1)},
			}
			if i > 0 {
				c.Seeds = []ident.NodeRef{{
					Key:  ident.Key(uint64(1) << 60),
					Addr: network.Address{Host: "node", Port: 1},
				}}
			}
			ctx.Create(c.Self.Addr.String(), NewPeer(SimEnv{Sim: sim, Emu: emu}, c))
		}
	}))
	sim.Run(30 * time.Second)

	if msrv.NodeCount() != 2 {
		t.Fatalf("monitor server has %d node views, want 2", msrv.NodeCount())
	}
	// Each view contains snapshots from the six instrumented protocol
	// components plus the runtime telemetry producer.
	views := 0
	for _, p := range []int{1, 2} {
		name := ident.NodeRef{Key: ident.Key(uint64(p) << 60), Addr: network.Address{Host: "node", Port: uint16(p)}}.String()
		v, ok := msrv.View(name)
		if !ok {
			t.Fatalf("no view for %s", name)
		}
		if len(v.Snapshots) != 7 {
			t.Fatalf("view %s has %d snapshots, want 7", name, len(v.Snapshots))
		}
		hasRuntime := false
		for _, s := range v.Snapshots {
			if s.Component == "runtime" {
				hasRuntime = true
				if s.Metrics["sched.executed"] <= 0 {
					t.Fatalf("runtime snapshot for %s has no executed events: %v", name, s.Metrics)
				}
			}
		}
		if !hasRuntime {
			t.Fatalf("view %s missing runtime snapshot", name)
		}
		views++
	}
	if views != 2 {
		t.Fatalf("views %d", views)
	}
}

func TestNodeConfigDefaults(t *testing.T) {
	cfg := NodeConfig{}
	cfg.applyDefaults()
	if cfg.ReplicationDegree != 3 || cfg.SuccessorListSize != 4 ||
		cfg.FDInterval != 100*time.Millisecond || cfg.OpTimeout != time.Second {
		t.Fatalf("defaults: %+v", cfg)
	}
}

func TestQueryParam(t *testing.T) {
	if queryParam("key=a&value=b", "key") != "a" {
		t.Fatalf("key")
	}
	if queryParam("key=a&value=b", "value") != "b" {
		t.Fatalf("value")
	}
	if queryParam("key=a", "missing") != "" {
		t.Fatalf("missing")
	}
	if queryParam("", "key") != "" {
		t.Fatalf("empty")
	}
}
