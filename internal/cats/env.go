package cats

import (
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/simulation"
	"repro/internal/timer"
)

// Env abstracts the execution environment a CATS node runs in: which
// Network transport and which Timer provider to instantiate. This is the
// paper's decoupling of component code from execution mode — the Node is
// identical across environments.
type Env interface {
	// NewTransport returns a component definition providing the Network
	// port for the given address.
	NewTransport(addr network.Address) core.Definition
	// NewTimer returns a component definition providing the Timer port.
	NewTimer() core.Definition
}

// SimEnv executes nodes in deterministic simulation: emulated network and
// virtual-time timers.
type SimEnv struct {
	Sim *simulation.Simulation
	Emu *simulation.NetworkEmulator
}

// NewTransport implements Env.
func (e SimEnv) NewTransport(addr network.Address) core.Definition {
	return e.Emu.Transport(addr)
}

// NewTimer implements Env.
func (e SimEnv) NewTimer() core.Definition { return simulation.NewTimer(e.Sim) }

var _ Env = SimEnv{}

// LoopbackEnv executes nodes in real time within one process over the
// in-process loopback network — the paper's local interactive stress-test
// mode.
type LoopbackEnv struct {
	Registry *network.LoopbackRegistry
}

// NewTransport implements Env.
func (e LoopbackEnv) NewTransport(addr network.Address) core.Definition {
	return network.NewLoopback(addr, e.Registry)
}

// NewTimer implements Env.
func (e LoopbackEnv) NewTimer() core.Definition { return timer.NewReal() }

var _ Env = LoopbackEnv{}

// TCPEnv executes nodes over real TCP sockets with real timers — the
// production deployment mode.
type TCPEnv struct {
	// Compress enables zlib message compression.
	Compress bool
	// WireCodec names the wire codec backend ("gob", "gob+zlib", "binary");
	// empty keeps the transport default. Takes precedence over Compress.
	WireCodec string
}

// NewTransport implements Env.
func (e TCPEnv) NewTransport(addr network.Address) core.Definition {
	var opts []network.TCPOption
	if e.Compress {
		opts = append(opts, network.WithCompression())
	}
	if e.WireCodec != "" {
		opts = append(opts, network.WithWireCodecName(e.WireCodec))
	}
	return network.NewTCP(addr, opts...)
}

// NewTimer implements Env.
func (e TCPEnv) NewTimer() core.Definition { return timer.NewReal() }

var _ Env = TCPEnv{}
