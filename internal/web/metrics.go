// Prometheus text exposition (format 0.0.4) for the runtime telemetry
// snapshot and the process-wide network counters. Hand-rolled rather than
// depending on a client library: the format is a few lines of escaping rules,
// and the repo's dependency budget is the standard library.
package web

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/tracing"
)

// PromContentType is the Content-Type of the Prometheus text exposition
// format version 0.0.4.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// The tracing package is dependency-free by design, so web registers its
// exposition on its behalf (tracing cannot import the registry without a
// cycle).
func init() {
	RegisterMetricsSource("tracing", func(m *MetricsWriter) {
		recorded, dropped := tracing.Stats()
		m.Header("cats_tracing_spans_recorded_total", "counter", "Spans recorded into the process span ring.")
		m.Counter("cats_tracing_spans_recorded_total", recorded)
		m.Header("cats_tracing_spans_dropped_total", "counter", "Spans evicted by span-ring wrap-around.")
		m.Counter("cats_tracing_spans_dropped_total", dropped)
		m.Header("cats_tracing_sample_every", "gauge", "Trace sampling period (0 = tracing disabled).")
		m.Gauge("cats_tracing_sample_every", float64(tracing.SampleEvery()))
	})
}

// MetricsWriter emits metric families in the Prometheus text exposition
// format: a HELP/TYPE header per family followed by one sample line per
// (name, label set). Label values are escaped per the format spec.
type MetricsWriter struct {
	w   io.Writer
	err error
}

// NewMetricsWriter wraps w for exposition output.
func NewMetricsWriter(w io.Writer) *MetricsWriter { return &MetricsWriter{w: w} }

// Err returns the first write error, if any.
func (m *MetricsWriter) Err() error { return m.err }

func (m *MetricsWriter) printf(format string, args ...any) {
	if m.err != nil {
		return
	}
	_, m.err = fmt.Fprintf(m.w, format, args...)
}

// Header writes the HELP and TYPE lines for a metric family. typ is
// "counter", "gauge", or "histogram".
func (m *MetricsWriter) Header(name, typ, help string) {
	m.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double-quote, and newline.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// formatLabels renders {k="v",...} from alternating key/value pairs; empty
// input renders nothing.
func formatLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `%s="%s"`, kv[i], escapeLabel(kv[i+1]))
	}
	sb.WriteByte('}')
	return sb.String()
}

// Counter writes one counter sample. kv is alternating label key/value pairs.
func (m *MetricsWriter) Counter(name string, value uint64, kv ...string) {
	m.printf("%s%s %d\n", name, formatLabels(kv), value)
}

// Gauge writes one gauge sample.
func (m *MetricsWriter) Gauge(name string, value float64, kv ...string) {
	m.printf("%s%s %g\n", name, formatLabels(kv), value)
}

// Histogram writes a full Prometheus histogram from the core power-of-two
// latency stats: cumulative `le` buckets in seconds, then _sum and _count.
func (m *MetricsWriter) Histogram(name string, ls core.LatencyStats, kv ...string) {
	var cum uint64
	for i := 0; i < core.LatencyBuckets; i++ {
		cum += ls.Buckets[i]
		if ls.Buckets[i] == 0 && i < core.LatencyBuckets-1 {
			continue // sparse output: skip empty non-terminal buckets
		}
		le := float64(core.BucketBoundNS(i)) / 1e9
		lkv := append(append([]string{}, kv...), "le", fmt.Sprintf("%g", le))
		m.printf("%s_bucket%s %d\n", name, formatLabels(lkv), cum)
	}
	inf := append(append([]string{}, kv...), "le", "+Inf")
	m.printf("%s_bucket%s %d\n", name, formatLabels(inf), ls.Samples)
	m.printf("%s_sum%s %g\n", name, formatLabels(kv), float64(ls.SumNanos)/1e9)
	m.printf("%s_count%s %d\n", name, formatLabels(kv), ls.Samples)
}

// Process-global metric sources: packages with process-wide counters (the
// pattern internal/network started) register an exposition callback here —
// usually from init() — and every /metrics scrape appends them. The
// registry keeps web free of imports on those packages.
var (
	sourceMu sync.Mutex
	sources  map[string]func(*MetricsWriter)
)

// RegisterMetricsSource installs (or replaces) a named exposition source.
func RegisterMetricsSource(name string, fn func(*MetricsWriter)) {
	sourceMu.Lock()
	defer sourceMu.Unlock()
	if sources == nil {
		sources = make(map[string]func(*MetricsWriter))
	}
	sources[name] = fn
}

// WriteRegisteredMetrics renders every registered source, in name order so
// scrapes are deterministic.
func WriteRegisteredMetrics(w io.Writer) error {
	sourceMu.Lock()
	names := make([]string, 0, len(sources))
	for n := range sources {
		names = append(names, n)
	}
	fns := make([]func(*MetricsWriter), 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fns = append(fns, sources[n])
	}
	sourceMu.Unlock()
	m := NewMetricsWriter(w)
	for _, fn := range fns {
		fn(m)
	}
	return m.Err()
}

// WriteRuntimeMetrics renders a core telemetry snapshot as the
// cats_scheduler_*, cats_component_*, cats_routecache_*, and cats_trace_*
// series.
func WriteRuntimeMetrics(w io.Writer, s core.MetricsSnapshot) error {
	m := NewMetricsWriter(w)

	m.Header("cats_runtime_components_live", "gauge", "Components currently alive.")
	m.Gauge("cats_runtime_components_live", float64(s.LiveComponents))
	m.Header("cats_runtime_components_total", "counter", "Components ever created.")
	m.Counter("cats_runtime_components_total", uint64(s.TotalComponents))
	m.Header("cats_runtime_faults_total", "counter", "Handler panics recovered runtime-wide.")
	m.Counter("cats_runtime_faults_total", s.Faults)

	m.Header("cats_scheduler_workers", "gauge", "Scheduler worker goroutines.")
	m.Gauge("cats_scheduler_workers", float64(s.Scheduler.Workers))
	m.Header("cats_scheduler_executed_total", "counter", "Component events executed.")
	m.Counter("cats_scheduler_executed_total", s.Scheduler.Executed)
	m.Header("cats_scheduler_local_pops_total", "counter", "Ready components consumed from the worker's own deque.")
	m.Counter("cats_scheduler_local_pops_total", s.Scheduler.LocalPops)
	m.Header("cats_scheduler_steals_total", "counter", "Successful batch steals.")
	m.Counter("cats_scheduler_steals_total", s.Scheduler.Steals)
	m.Header("cats_scheduler_steal_misses_total", "counter", "Steal attempts that found nothing.")
	m.Counter("cats_scheduler_steal_misses_total", s.Scheduler.StealMisses)
	m.Header("cats_scheduler_stolen_total", "counter", "Components claimed by steals.")
	m.Counter("cats_scheduler_stolen_total", s.Scheduler.Stolen)
	m.Header("cats_scheduler_steal_shrinks_total", "counter", "Steals shrunk below half by the adaptive batch policy.")
	m.Counter("cats_scheduler_steal_shrinks_total", s.Scheduler.StealShrinks)
	m.Header("cats_scheduler_parks_total", "counter", "Times a worker parked for lack of work.")
	m.Counter("cats_scheduler_parks_total", s.Scheduler.Parks)
	m.Header("cats_scheduler_max_deque_depth", "gauge", "High-water mark of any worker deque.")
	m.Gauge("cats_scheduler_max_deque_depth", float64(s.Scheduler.MaxDequeDepth))
	if len(s.Scheduler.PerWorker) > 1 {
		m.Header("cats_scheduler_worker_executed_total", "counter", "Events executed per worker.")
		for _, w := range s.Scheduler.PerWorker {
			m.Counter("cats_scheduler_worker_executed_total", w.Executed, "worker", fmt.Sprint(w.ID))
		}
	}

	m.Header("cats_routecache_tables", "gauge", "Published copy-on-write route tables.")
	m.Gauge("cats_routecache_tables", float64(s.RouteCache.Tables))
	m.Header("cats_routecache_plans", "gauge", "Cached delivery plans across all route tables.")
	m.Gauge("cats_routecache_plans", float64(s.RouteCache.Plans))
	m.Header("cats_routecache_builds_total", "counter", "Route-plan constructions (cache misses).")
	m.Counter("cats_routecache_builds_total", s.RouteCache.Builds)
	m.Header("cats_routecache_resets_total", "counter", "Route-table resets forced by the capacity cap.")
	m.Counter("cats_routecache_resets_total", s.RouteCache.Resets)
	m.Header("cats_routecache_capacity", "gauge", "Per-table plan cap.")
	m.Gauge("cats_routecache_capacity", float64(s.RouteCache.Capacity))

	m.Header("cats_trace_enabled", "gauge", "Whether an event-trace sink is attached.")
	if s.Trace.Enabled {
		m.Gauge("cats_trace_enabled", 1)
	} else {
		m.Gauge("cats_trace_enabled", 0)
	}
	m.Header("cats_trace_records_total", "counter", "Trace records written.")
	m.Counter("cats_trace_records_total", s.Trace.Records)

	m.Header("cats_component_handled_total", "counter", "Events handled per component.")
	for _, c := range s.Components {
		m.Counter("cats_component_handled_total", c.Handled, "component", c.Path)
	}
	m.Header("cats_component_triggers_total", "counter", "Events triggered per component.")
	for _, c := range s.Components {
		m.Counter("cats_component_triggers_total", c.Triggers, "component", c.Path)
	}
	m.Header("cats_component_faults_total", "counter", "Handler panics per component.")
	for _, c := range s.Components {
		if c.Faults > 0 {
			m.Counter("cats_component_faults_total", c.Faults, "component", c.Path)
		}
	}
	m.Header("cats_component_queue_depth", "gauge", "Queued events per component.")
	for _, c := range s.Components {
		m.Gauge("cats_component_queue_depth", float64(c.QueueDepth), "component", c.Path)
	}

	// Handler latency aggregated across components: per-component histograms
	// would multiply cardinality by 34 buckets each.
	var agg core.LatencyStats
	for _, c := range s.Components {
		agg.Samples += c.Latency.Samples
		agg.SumNanos += c.Latency.SumNanos
		for i := range agg.Buckets {
			agg.Buckets[i] += c.Latency.Buckets[i]
		}
	}
	m.Header("cats_component_handler_latency_seconds", "histogram",
		"Sampled handler execution latency, all components.")
	m.Histogram("cats_component_handler_latency_seconds", agg)

	return m.Err()
}

// WriteNetworkMetrics renders the process-wide network counters as the
// cats_network_* series.
func WriteNetworkMetrics(w io.Writer, n network.Metrics) error {
	m := NewMetricsWriter(w)
	m.Header("cats_network_sent_total", "counter", "Messages enqueued for transmission.")
	m.Counter("cats_network_sent_total", n.Sent)
	m.Header("cats_network_received_total", "counter", "Messages delivered to the Network port.")
	m.Counter("cats_network_received_total", n.Received)
	m.Header("cats_network_dropped_full_total", "counter", "Messages dropped on full send queues.")
	m.Counter("cats_network_dropped_full_total", n.DroppedFull)
	m.Header("cats_network_send_errors_total", "counter", "Encode, dial, and write failures.")
	m.Counter("cats_network_send_errors_total", n.SendErrors)
	m.Header("cats_network_encoded_msgs_total", "counter", "Messages serialized by the codec.")
	m.Counter("cats_network_encoded_msgs_total", n.EncodedMsgs)
	m.Header("cats_network_encoded_bytes_total", "counter", "Payload bytes produced by the codec.")
	m.Counter("cats_network_encoded_bytes_total", n.EncodedBytes)
	m.Header("cats_network_decoded_msgs_total", "counter", "Messages deserialized by the codec.")
	m.Counter("cats_network_decoded_msgs_total", n.DecodedMsgs)
	m.Header("cats_network_compressed_msgs_total", "counter", "Messages zlib-compressed on encode.")
	m.Counter("cats_network_compressed_msgs_total", n.CompressedMsgs)
	m.Header("cats_network_compressed_bytes_in_total", "counter", "Uncompressed bytes fed into zlib.")
	m.Counter("cats_network_compressed_bytes_in_total", n.CompressedIn)
	m.Header("cats_network_compressed_bytes_out_total", "counter", "Compressed bytes out of zlib.")
	m.Counter("cats_network_compressed_bytes_out_total", n.CompressedOut)
	m.Header("cats_network_decompressed_msgs_total", "counter", "Messages zlib-decompressed on decode.")
	m.Counter("cats_network_decompressed_msgs_total", n.DecompressedMsgs)
	m.Header("cats_network_reconnects_total", "counter", "Successful redials of a peer after a failure.")
	m.Counter("cats_network_reconnects_total", n.Reconnects)
	m.Header("cats_network_requeued_total", "counter", "Frames carried across a broken write for redelivery.")
	m.Counter("cats_network_requeued_total", n.Requeued)
	m.Header("cats_network_abandoned_total", "counter", "Queued frames dropped when a peer's retry budget ran out.")
	m.Counter("cats_network_abandoned_total", n.Abandoned)
	m.Header("cats_network_traced_frames_total", "counter", "Encoded messages carrying a sampled trace context.")
	m.Counter("cats_network_traced_frames_total", n.TracedFrames)
	m.Header("cats_network_codec_binary_encoded_total", "counter", "Frames encoded in the binary wire format.")
	m.Counter("cats_network_codec_binary_encoded_total", n.BinaryEncoded)
	m.Header("cats_network_codec_binary_decoded_total", "counter", "Frames decoded from the binary wire format.")
	m.Counter("cats_network_codec_binary_decoded_total", n.BinaryDecoded)
	m.Header("cats_network_codec_fallbacks_total", "counter", "Messages outside the binary wire set encoded via gob fallback.")
	m.Counter("cats_network_codec_fallbacks_total", n.CodecFallbacks)
	m.Header("cats_network_codec_swaps_total", "counter", "Live wire-codec swaps applied to peers.")
	m.Counter("cats_network_codec_swaps_total", n.CodecSwaps)
	m.Header("cats_network_codec_switch_frames_total", "counter", "Codec-switch control frames observed on inbound connections.")
	m.Counter("cats_network_codec_switch_frames_total", n.CodecSwitches)
	m.Header("cats_network_peers", "gauge", "Outbound peer connections by circuit-breaker state.")
	m.Gauge("cats_network_peers", float64(n.PeersConnecting), "state", "connecting")
	m.Gauge("cats_network_peers", float64(n.PeersUp), "state", "up")
	m.Gauge("cats_network_peers", float64(n.PeersBackoff), "state", "backoff")
	m.Gauge("cats_network_peers", float64(n.PeersDown), "state", "down")
	return m.Err()
}
