package web

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// echoApp provides Web and answers with the request path.
type echoApp struct {
	delay bool // never answer when true (tests bridge timeout)
}

func (a *echoApp) Setup(ctx *core.Ctx) {
	p := ctx.Provides(PortType)
	core.Subscribe(ctx, p, func(r Request) {
		if a.delay {
			return
		}
		ctx.Trigger(Response{
			ReqID:       r.ReqID,
			Status:      200,
			ContentType: "text/plain",
			Body:        fmt.Sprintf("path=%s query=%s", r.Path, r.Query),
		}, p)
	})
}

func newWebWorld(t *testing.T, app core.Definition, timeout time.Duration) (*core.Runtime, *Bridge) {
	t.Helper()
	rt := core.New(
		core.WithScheduler(core.NewWorkStealingScheduler(2)),
		core.WithFaultPolicy(core.LogAndContinue),
	)
	t.Cleanup(rt.Shutdown)
	bridge := NewBridge(BridgeConfig{Listen: "127.0.0.1:0", Timeout: timeout})
	rt.MustBootstrap("Main", core.SetupFunc(func(ctx *core.Ctx) {
		appC := ctx.Create("app", app)
		brC := ctx.Create("bridge", bridge)
		ctx.Connect(appC.Provided(PortType), brC.Required(PortType))
	}))
	if !rt.WaitQuiescence(5 * time.Second) {
		t.Fatal("no quiescence")
	}
	deadline := time.Now().Add(5 * time.Second)
	for bridge.Addr() == "" && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if bridge.Addr() == "" {
		t.Fatal("bridge never bound")
	}
	return rt, bridge
}

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestBridgeRoundTrip(t *testing.T) {
	_, bridge := newWebWorld(t, &echoApp{}, 5*time.Second)
	code, body := httpGet(t, "http://"+bridge.Addr()+"/hello?x=1")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if !strings.Contains(body, "path=/hello") || !strings.Contains(body, "query=x=1") {
		t.Fatalf("body %q", body)
	}
}

func TestBridgeConcurrentRequests(t *testing.T) {
	_, bridge := newWebWorld(t, &echoApp{}, 5*time.Second)
	done := make(chan string, 8)
	for i := 0; i < 8; i++ {
		go func(i int) {
			_, body := httpGet(t, fmt.Sprintf("http://%s/req%d", bridge.Addr(), i))
			done <- body
		}(i)
	}
	seen := map[string]bool{}
	for i := 0; i < 8; i++ {
		select {
		case b := <-done:
			seen[b] = true
		case <-time.After(10 * time.Second):
			t.Fatal("concurrent requests timed out")
		}
	}
	if len(seen) != 8 {
		t.Fatalf("responses collided: %d distinct", len(seen))
	}
}

func TestBridgeTimeout(t *testing.T) {
	_, bridge := newWebWorld(t, &echoApp{delay: true}, 100*time.Millisecond)
	code, _ := httpGet(t, "http://"+bridge.Addr()+"/slow")
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", code)
	}
}

func TestBridgeShutdownStopsServing(t *testing.T) {
	rt, bridge := newWebWorld(t, &echoApp{}, time.Second)
	addr := bridge.Addr()
	// Stop the whole tree: the bridge shuts its HTTP server down.
	core.TriggerOn(rt.Root().Control(), core.Stop{}) //nolint:errcheck
	rt.WaitQuiescence(5 * time.Second)
	time.Sleep(50 * time.Millisecond)
	client := http.Client{Timeout: time.Second}
	if _, err := client.Get("http://" + addr + "/x"); err == nil {
		t.Fatalf("bridge still serving after shutdown")
	}
}

func TestResponseDefaults(t *testing.T) {
	// Response with zero status and no content type gets sane defaults.
	rt := core.New(
		core.WithScheduler(core.NewWorkStealingScheduler(1)),
		core.WithFaultPolicy(core.LogAndContinue),
	)
	defer rt.Shutdown()
	bridge := NewBridge(BridgeConfig{Listen: "127.0.0.1:0"})
	rt.MustBootstrap("Main", core.SetupFunc(func(ctx *core.Ctx) {
		appC := ctx.Create("app", core.SetupFunc(func(cx *core.Ctx) {
			p := cx.Provides(PortType)
			core.Subscribe(cx, p, func(r Request) {
				cx.Trigger(Response{ReqID: r.ReqID, Body: "defaulted"}, p)
			})
		}))
		brC := ctx.Create("bridge", bridge)
		ctx.Connect(appC.Provided(PortType), brC.Required(PortType))
	}))
	rt.WaitQuiescence(5 * time.Second)
	deadline := time.Now().Add(5 * time.Second)
	for bridge.Addr() == "" && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	resp, err := http.Get("http://" + bridge.Addr() + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("content type %q", ct)
	}
}
