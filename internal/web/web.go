// Package web implements the paper's Web abstraction: components expose a
// user-friendly status/interaction surface by providing a Web port that
// accepts Request events and answers with Response events. The Bridge
// component (the Jetty equivalent) embeds a net/http server and converts
// every HTTP request into a Request event on its required Web port,
// correlating the Response back to the HTTP client.
package web

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/tracing"
)

// Request is one web request entering the component system.
type Request struct {
	ReqID uint64
	// Path is the URL path, e.g. "/status".
	Path string
	// Query is the raw query string.
	Query string
}

// Response answers a Request.
type Response struct {
	ReqID  uint64
	Status int
	// ContentType defaults to text/html when empty.
	ContentType string
	Body        string
}

// PortType is the Web service abstraction: application components provide
// it; the HTTP bridge requires it.
var PortType = core.NewPortType("Web",
	core.Request[Request](),
	core.Indication[Response](),
)

// BridgeConfig parameterizes an HTTP bridge.
type BridgeConfig struct {
	// Listen is the host:port to serve HTTP on.
	Listen string
	// Timeout bounds how long the bridge waits for a component Response
	// (default 5s).
	Timeout time.Duration
	// EnablePprof mounts the net/http/pprof handlers under /debug/pprof/.
	EnablePprof bool
}

// Bridge is the embedded web server component: it requires a Web port and
// forwards HTTP traffic through it.
type Bridge struct {
	cfg BridgeConfig

	ctx  *core.Ctx
	webP *core.Port

	mu      sync.Mutex
	waiters map[uint64]chan Response
	seq     atomic.Uint64
	srv     *http.Server
	ln      net.Listener
}

// NewBridge creates an HTTP bridge component definition.
func NewBridge(cfg BridgeConfig) *Bridge {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Second
	}
	return &Bridge{cfg: cfg, waiters: make(map[uint64]chan Response)}
}

var _ core.Definition = (*Bridge)(nil)

// Setup declares the required Web port; the HTTP server starts on Start.
func (b *Bridge) Setup(ctx *core.Ctx) {
	b.ctx = ctx
	b.webP = ctx.Requires(PortType)
	core.Subscribe(ctx, b.webP, b.handleResponse)
	core.Subscribe(ctx, ctx.Control(), func(core.Start) {
		if err := b.listen(); err != nil {
			panic(fmt.Errorf("web: listen on %s: %w", b.cfg.Listen, err))
		}
	})
	core.Subscribe(ctx, ctx.Control(), func(core.Stop) { b.shutdown() })
}

// Addr returns the bound listen address (useful with ":0").
func (b *Bridge) Addr() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.ln == nil {
		return ""
	}
	return b.ln.Addr().String()
}

func (b *Bridge) listen() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.ln != nil {
		return nil
	}
	ln, err := net.Listen("tcp", b.cfg.Listen)
	if err != nil {
		return err
	}
	b.ln = ln
	srv := &http.Server{Handler: b.mux()}
	b.srv = srv
	go func() { _ = srv.Serve(ln) }()
	return nil
}

func (b *Bridge) shutdown() {
	b.mu.Lock()
	srv := b.srv
	b.srv = nil
	b.ln = nil
	b.mu.Unlock()
	if srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}
}

// mux assembles the bridge's HTTP routes: built-in telemetry endpoints, the
// optional pprof handlers, and component-served paths on everything else.
func (b *Bridge) mux() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", b.serveMetrics)
	mux.HandleFunc("/debug/runtime", b.serveRuntimeJSON)
	mux.HandleFunc("/debug/trace", b.serveTraceJSON)
	if b.cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	mux.HandleFunc("/", b.serveHTTP)
	return mux
}

// serveMetrics renders the runtime telemetry snapshot and the process-wide
// network counters in the Prometheus text exposition format. It runs on the
// HTTP goroutine: MetricsSnapshot is safe to call from outside component
// handlers, and aggregation cost is proportional to live components, which is
// fine at scrape frequency.
func (b *Bridge) serveMetrics(w http.ResponseWriter, r *http.Request) {
	snap := b.ctx.Runtime().MetricsSnapshot()
	var buf bytes.Buffer
	if err := WriteRuntimeMetrics(&buf, snap); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if err := WriteNetworkMetrics(&buf, network.GlobalMetrics()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if err := WriteRegisteredMetrics(&buf); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", PromContentType)
	_, _ = w.Write(buf.Bytes())
}

// serveRuntimeJSON renders the same snapshot as indented JSON for humans and
// scripts that do not speak the exposition format.
func (b *Bridge) serveRuntimeJSON(w http.ResponseWriter, r *http.Request) {
	snap := b.ctx.Runtime().MetricsSnapshot()
	out := struct {
		Runtime core.MetricsSnapshot `json:"runtime"`
		Network network.Metrics      `json:"network"`
	}{snap, network.GlobalMetrics()}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(out)
}

// TraceDump is the JSON document served at /debug/trace: the node's span
// ring snapshot plus span accounting. The monitor's trace collector
// scrapes this from every member node and joins the spans by trace ID.
type TraceDump struct {
	// SampleEvery is the node's sampling period (0 = tracing disabled).
	SampleEvery int `json:"sample_every"`
	// Recorded and Dropped are the process-wide span counters.
	Recorded uint64 `json:"recorded"`
	Dropped  uint64 `json:"dropped"`
	// Spans is the ring snapshot, oldest first.
	Spans []tracing.Span `json:"spans"`
}

// serveTraceJSON dumps the process-global span ring. ?trace=<hex id>
// filters to one trace's spans (what an operator pastes from an exemplar
// or a violation report).
func (b *Bridge) serveTraceJSON(w http.ResponseWriter, r *http.Request) {
	spans := tracing.Default().Snapshot()
	if q := r.URL.Query().Get("trace"); q != "" {
		id, err := tracing.ParseID(q)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		kept := spans[:0]
		for _, s := range spans {
			if s.Trace == id {
				kept = append(kept, s)
			}
		}
		spans = kept
	}
	recorded, dropped := tracing.Stats()
	dump := TraceDump{
		SampleEvery: tracing.SampleEvery(),
		Recorded:    recorded,
		Dropped:     dropped,
		Spans:       spans,
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(dump)
}

// serveHTTP wraps one HTTP request into a Request event and waits for the
// correlated Response.
func (b *Bridge) serveHTTP(w http.ResponseWriter, r *http.Request) {
	id := b.seq.Add(1)
	ch := make(chan Response, 1)
	b.mu.Lock()
	b.waiters[id] = ch
	b.mu.Unlock()
	defer func() {
		b.mu.Lock()
		delete(b.waiters, id)
		b.mu.Unlock()
	}()

	if err := core.TriggerOn(b.webP, Request{ReqID: id, Path: r.URL.Path, Query: r.URL.RawQuery}); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	select {
	case resp := <-ch:
		ct := resp.ContentType
		if ct == "" {
			ct = "text/html; charset=utf-8"
		}
		w.Header().Set("Content-Type", ct)
		status := resp.Status
		if status == 0 {
			status = http.StatusOK
		}
		w.WriteHeader(status)
		_, _ = fmt.Fprint(w, resp.Body)
	case <-time.After(b.cfg.Timeout):
		http.Error(w, "component response timeout", http.StatusGatewayTimeout)
	}
}

// handleResponse resolves the waiting HTTP handler, if any.
func (b *Bridge) handleResponse(resp Response) {
	b.mu.Lock()
	ch, ok := b.waiters[resp.ReqID]
	b.mu.Unlock()
	if ok {
		select {
		case ch <- resp:
		default:
		}
	}
}
