package web

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/network"
)

func TestMetricsEndpoint(t *testing.T) {
	_, bridge := newWebWorld(t, &echoApp{}, 5*time.Second)

	// Generate some traffic through the component system first.
	for i := 0; i < 5; i++ {
		httpGet(t, "http://"+bridge.Addr()+"/warm")
	}

	resp, err := http.Get("http://" + bridge.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != PromContentType {
		t.Fatalf("content type %q, want %q", ct, PromContentType)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	// Every required series family is present.
	for _, series := range []string{
		"cats_scheduler_executed_total",
		"cats_scheduler_workers",
		"cats_component_handled_total",
		"cats_component_queue_depth",
		"cats_component_handler_latency_seconds_count",
		"cats_routecache_plans",
		"cats_routecache_builds_total",
		"cats_routecache_resets_total",
		"cats_network_sent_total",
		"cats_network_compressed_bytes_out_total",
		"cats_network_reconnects_total",
		"cats_network_requeued_total",
		"cats_network_abandoned_total",
		"cats_network_traced_frames_total",
		"cats_network_codec_binary_encoded_total",
		"cats_network_codec_swaps_total",
		`cats_network_peers{state="backoff"}`,
		"cats_runtime_components_live",
		"cats_tracing_spans_recorded_total",
		"cats_tracing_spans_dropped_total",
		"cats_tracing_sample_every",
	} {
		if !strings.Contains(body, series) {
			t.Errorf("missing series %s", series)
		}
	}
	// The bridge itself shows up as a labeled component with handled events.
	if !strings.Contains(body, `cats_component_handled_total{component="`) {
		t.Fatalf("no labeled component series in:\n%s", body)
	}
	// Exposition format sanity: every non-comment line is "name{labels} value"
	// or "name value".
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Fatalf("malformed sample line %q", line)
		}
	}
}

func TestDebugRuntimeJSON(t *testing.T) {
	_, bridge := newWebWorld(t, &echoApp{}, 5*time.Second)
	httpGet(t, "http://"+bridge.Addr()+"/warm")

	resp, err := http.Get("http://" + bridge.Addr() + "/debug/runtime")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var out struct {
		Runtime core.MetricsSnapshot `json:"runtime"`
		Network network.Metrics      `json:"network"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Runtime.LiveComponents < 2 {
		t.Fatalf("live components %d, want >= 2", out.Runtime.LiveComponents)
	}
	if len(out.Runtime.Components) == 0 {
		t.Fatal("no component stats in JSON snapshot")
	}
	if out.Runtime.Scheduler.Workers != 2 {
		t.Fatalf("workers %d, want 2", out.Runtime.Scheduler.Workers)
	}
}

func TestPprofGating(t *testing.T) {
	// Default bridge: pprof not mounted.
	_, bridge := newWebWorld(t, &echoApp{}, 5*time.Second)
	code, body := httpGet(t, "http://"+bridge.Addr()+"/debug/pprof/")
	// Falls through to the component app, which echoes the path.
	if code != 200 || !strings.Contains(body, "path=/debug/pprof/") {
		t.Fatalf("pprof path not routed to app: code=%d body=%q", code, body)
	}

	// Pprof-enabled bridge serves the index.
	rt := core.New(
		core.WithScheduler(core.NewWorkStealingScheduler(2)),
		core.WithFaultPolicy(core.LogAndContinue),
	)
	t.Cleanup(rt.Shutdown)
	pb := NewBridge(BridgeConfig{Listen: "127.0.0.1:0", Timeout: time.Second, EnablePprof: true})
	rt.MustBootstrap("Main", core.SetupFunc(func(ctx *core.Ctx) {
		appC := ctx.Create("app", &echoApp{})
		brC := ctx.Create("bridge", pb)
		ctx.Connect(appC.Provided(PortType), brC.Required(PortType))
	}))
	rt.WaitQuiescence(5 * time.Second)
	deadline := time.Now().Add(5 * time.Second)
	for pb.Addr() == "" && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	code, body = httpGet(t, "http://"+pb.Addr()+"/debug/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index not served: code=%d", code)
	}
}

// TestMetricsWriterExposition pins the exact exposition output for a
// synthetic snapshot (golden test for the hand-rolled format writer).
func TestMetricsWriterExposition(t *testing.T) {
	var sb strings.Builder
	m := NewMetricsWriter(&sb)
	m.Header("demo_total", "counter", "A demo counter.")
	m.Counter("demo_total", 42)
	m.Counter("demo_total", 7, "component", `we"ird\pa`+"\n"+`th`)
	m.Gauge("demo_depth", 3.5, "worker", "0")
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	want := "# HELP demo_total A demo counter.\n" +
		"# TYPE demo_total counter\n" +
		"demo_total 42\n" +
		`demo_total{component="we\"ird\\pa\nth"} 7` + "\n" +
		`demo_depth{worker="0"} 3.5` + "\n"
	if sb.String() != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestMetricsWriterHistogram(t *testing.T) {
	var ls core.LatencyStats
	ls.Samples = 3
	ls.SumNanos = 1500
	ls.Buckets[9] = 2  // two samples in [256, 512) ns
	ls.Buckets[10] = 1 // one sample in [512, 1024) ns

	var sb strings.Builder
	m := NewMetricsWriter(&sb)
	m.Histogram("lat_seconds", ls)
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, line := range []string{
		`lat_seconds_bucket{le="5.12e-07"} 2`,
		`lat_seconds_bucket{le="1.024e-06"} 3`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		`lat_seconds_sum 1.5e-06`,
		`lat_seconds_count 3`,
	} {
		if !strings.Contains(out, line) {
			t.Errorf("missing line %q in:\n%s", line, out)
		}
	}
	// Cumulative counts never decrease.
	last := -1.0
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if !strings.HasPrefix(line, "lat_seconds_bucket") {
			continue
		}
		var v float64
		if _, err := fmtSscanLast(line, &v); err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if v < last {
			t.Fatalf("bucket counts decreased at %q", line)
		}
		last = v
	}
}

// fmtSscanLast parses the trailing value of an exposition sample line.
func fmtSscanLast(line string, v *float64) (int, error) {
	fields := strings.Fields(line)
	return 1, json.Unmarshal([]byte(fields[len(fields)-1]), v)
}

// TestRegisteredMetricsSources checks the process-global source registry:
// sources render in name order, re-registering a name replaces it, and the
// /metrics handler picks registered sources up.
func TestRegisteredMetricsSources(t *testing.T) {
	RegisterMetricsSource("ztest-b", func(m *MetricsWriter) {
		m.Counter("ztest_b_total", 2)
	})
	RegisterMetricsSource("ztest-a", func(m *MetricsWriter) {
		m.Gauge("ztest_a", 1)
	})

	var b strings.Builder
	if err := WriteRegisteredMetrics(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	ia, ib := strings.Index(out, "ztest_a 1"), strings.Index(out, "ztest_b_total 2")
	if ia < 0 || ib < 0 {
		t.Fatalf("registered sources missing from output:\n%s", out)
	}
	if ia > ib {
		t.Fatalf("sources not in name order:\n%s", out)
	}

	// Replacement: same name, new output.
	RegisterMetricsSource("ztest-a", func(m *MetricsWriter) {
		m.Gauge("ztest_a", 9)
	})
	b.Reset()
	if err := WriteRegisteredMetrics(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "ztest_a 9") || strings.Contains(b.String(), "ztest_a 1") {
		t.Fatalf("source replacement did not take:\n%s", b.String())
	}

	// The /metrics endpoint includes registered sources.
	_, bridge := newWebWorld(t, &echoApp{}, 5*time.Second)
	_, body := httpGet(t, "http://"+bridge.Addr()+"/metrics")
	if !strings.Contains(body, "ztest_a 9") {
		t.Fatalf("/metrics does not include registered sources:\n%s", body)
	}
}
