package web

import (
	"encoding/json"
	"testing"
	"time"

	"repro/internal/tracing"
)

// TestBridgeServesTraceRing pins the /debug/trace contract the monitor's
// collector depends on: the endpoint dumps the process span ring as a
// TraceDump JSON document, and ?trace= filters to one trace's spans.
func TestBridgeServesTraceRing(t *testing.T) {
	ring := tracing.NewRing(64)
	prev := tracing.SwapDefault(ring)
	t.Cleanup(func() { tracing.SwapDefault(prev) })

	base := time.Unix(100, 0)
	tracing.Record(tracing.Span{Trace: 0xAA, ID: 1, Node: "n1", Name: "get", Outcome: "ok", Start: base, End: base.Add(time.Millisecond)})
	tracing.Record(tracing.Span{Trace: 0xAA, ID: 2, Parent: 1, Node: "n1", Name: "read", Outcome: "ok", Start: base, End: base.Add(time.Millisecond)})
	tracing.Record(tracing.Span{Trace: 0xBB, ID: 3, Node: "n1", Name: "put", Outcome: "ok", Start: base, End: base})

	_, bridge := newWebWorld(t, &echoApp{}, 5*time.Second)

	code, body := httpGet(t, "http://"+bridge.Addr()+"/debug/trace")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	var dump TraceDump
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if len(dump.Spans) != 3 || dump.Recorded < 3 {
		t.Fatalf("dump = %+v, want 3 spans", dump)
	}
	if dump.SampleEvery != tracing.SampleEvery() {
		t.Fatalf("sample_every = %d, want %d", dump.SampleEvery, tracing.SampleEvery())
	}

	code, body = httpGet(t, "http://"+bridge.Addr()+"/debug/trace?trace="+tracing.FormatID(0xAA))
	if code != 200 {
		t.Fatalf("filtered status %d", code)
	}
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatal(err)
	}
	if len(dump.Spans) != 2 {
		t.Fatalf("filter returned %d spans, want 2", len(dump.Spans))
	}
	for _, s := range dump.Spans {
		if s.Trace != 0xAA {
			t.Fatalf("filter leaked span %+v", s)
		}
	}

	if code, _ := httpGet(t, "http://"+bridge.Addr()+"/debug/trace?trace=zzz"); code != 400 {
		t.Fatalf("bad trace id got status %d, want 400", code)
	}
}
