// Package status defines the Status port abstraction of the paper: every
// functional component of a node provides a Status port accepting
// StatusRequests and delivering StatusResponses, which the monitoring
// client and the node's web application aggregate.
package status

import "repro/internal/core"

// Request asks a component for a snapshot of its internal metrics.
type Request struct {
	ReqID uint64
}

// Response carries one component's metrics snapshot.
type Response struct {
	ReqID     uint64
	Component string
	Metrics   map[string]int64
}

// PortType is the Status service abstraction.
var PortType = core.NewPortType("Status",
	core.Request[Request](),
	core.Indication[Response](),
)
