package cyclon

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ident"
	"repro/internal/network"
	"repro/internal/simulation"
	"repro/internal/timer"
)

func addr(i int) network.Address { return network.Address{Host: "cy", Port: uint16(i)} }

func nodeRef(i int) ident.NodeRef {
	return ident.NodeRef{Key: ident.Key(i * 10), Addr: addr(i)}
}

// cyNode bundles an Overlay with transport and timer.
type cyNode struct {
	self ident.NodeRef
	sim  *simulation.Simulation
	emu  *simulation.NetworkEmulator
	cfg  Config

	ctx      *core.Ctx
	Overlay  *Overlay
	smpOuter *core.Port
	samples  []PeersSample
}

func (n *cyNode) Setup(ctx *core.Ctx) {
	n.ctx = ctx
	tr := ctx.Create("net", n.emu.Transport(n.self.Addr))
	tm := ctx.Create("timer", simulation.NewTimer(n.sim))
	cfg := n.cfg
	cfg.Self = n.self
	n.Overlay = New(cfg)
	ovC := ctx.Create("cyclon", n.Overlay)
	ctx.Connect(ovC.Required(network.PortType), tr.Provided(network.PortType))
	ctx.Connect(ovC.Required(timer.PortType), tm.Provided(timer.PortType))
	n.smpOuter = ovC.Provided(PortType)
	core.Subscribe(ctx, n.smpOuter, func(s PeersSample) { n.samples = append(n.samples, s) })
}

func newCyclonWorld(t *testing.T, n int, cfg Config) (*simulation.Simulation, []*cyNode) {
	t.Helper()
	sim := simulation.New(21)
	emu := simulation.NewNetworkEmulator(sim,
		simulation.WithLatency(simulation.ConstantLatency(2*time.Millisecond)))
	nodes := make([]*cyNode, n)
	for i := range nodes {
		nodes[i] = &cyNode{self: nodeRef(i + 1), sim: sim, emu: emu, cfg: cfg}
	}
	sim.Runtime().MustBootstrap("Main", core.SetupFunc(func(ctx *core.Ctx) {
		for i, nd := range nodes {
			ctx.Create(fmt.Sprintf("n%d", i+1), nd)
		}
	}))
	sim.Settle()
	return sim, nodes
}

func TestJoinSeedsView(t *testing.T) {
	sim, nodes := newCyclonWorld(t, 2, Config{Period: 200 * time.Millisecond})
	a, b := nodes[0], nodes[1]
	a.ctx.Trigger(JoinOverlay{Seeds: []ident.NodeRef{b.self}}, a.smpOuter)
	sim.Run(time.Millisecond)
	if a.Overlay.ViewSize() != 1 {
		t.Fatalf("view %d, want 1", a.Overlay.ViewSize())
	}
	if len(a.samples) == 0 {
		t.Fatalf("join must publish a sample")
	}
}

func TestShufflePropagatesMembership(t *testing.T) {
	// Chain seeding: node i knows only node i-1; shuffling must spread
	// knowledge so views grow beyond one entry.
	sim, nodes := newCyclonWorld(t, 6, Config{Period: 200 * time.Millisecond, ViewSize: 8, ShuffleSize: 4})
	for i := 1; i < len(nodes); i++ {
		nodes[i].ctx.Trigger(JoinOverlay{Seeds: []ident.NodeRef{nodes[i-1].self}}, nodes[i].smpOuter)
	}
	sim.Run(20 * time.Second)
	for i, n := range nodes {
		if got := n.Overlay.ViewSize(); got < 3 {
			t.Fatalf("node %d view %d, want >= 3 after gossip", i+1, got)
		}
	}
	if nodes[1].Overlay.Shuffles() == 0 {
		t.Fatalf("no shuffles happened")
	}
}

func TestViewNeverContainsSelf(t *testing.T) {
	sim, nodes := newCyclonWorld(t, 4, Config{Period: 100 * time.Millisecond})
	for i := 1; i < len(nodes); i++ {
		nodes[i].ctx.Trigger(JoinOverlay{Seeds: []ident.NodeRef{nodes[0].self}}, nodes[i].smpOuter)
	}
	// Try to poison with self-references.
	nodes[1].ctx.Trigger(JoinOverlay{Seeds: []ident.NodeRef{nodes[1].self}}, nodes[1].smpOuter)
	sim.Run(10 * time.Second)
	for i, n := range nodes {
		for _, p := range n.Overlay.View() {
			if p.Addr == n.self.Addr {
				t.Fatalf("node %d view contains self", i+1)
			}
		}
	}
}

func TestViewBounded(t *testing.T) {
	sim, nodes := newCyclonWorld(t, 8, Config{Period: 100 * time.Millisecond, ViewSize: 3, ShuffleSize: 2})
	for i := 1; i < len(nodes); i++ {
		nodes[i].ctx.Trigger(JoinOverlay{Seeds: []ident.NodeRef{nodes[0].self}}, nodes[i].smpOuter)
	}
	sim.Run(10 * time.Second)
	for i, n := range nodes {
		if got := n.Overlay.ViewSize(); got > 3 {
			t.Fatalf("node %d view %d exceeds bound 3", i+1, got)
		}
	}
}

func TestGetPeersReturnsSample(t *testing.T) {
	sim, nodes := newCyclonWorld(t, 3, Config{Period: 100 * time.Millisecond})
	a := nodes[0]
	a.ctx.Trigger(JoinOverlay{Seeds: []ident.NodeRef{nodes[1].self, nodes[2].self}}, a.smpOuter)
	sim.Run(time.Second)
	before := len(a.samples)
	a.ctx.Trigger(GetPeers{N: 1}, a.smpOuter)
	sim.Run(time.Millisecond)
	if len(a.samples) != before+1 {
		t.Fatalf("GetPeers produced %d new samples, want 1", len(a.samples)-before)
	}
	if got := len(a.samples[len(a.samples)-1].Peers); got != 1 {
		t.Fatalf("sample size %d, want 1", got)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}
	c.applyDefaults()
	if c.ViewSize != 16 || c.ShuffleSize != 8 || c.Period != time.Second {
		t.Fatalf("defaults: %+v", c)
	}
	c2 := Config{ViewSize: 4, ShuffleSize: 100}
	c2.applyDefaults()
	if c2.ShuffleSize != 4 {
		t.Fatalf("shuffle size must clamp to view size: %d", c2.ShuffleSize)
	}
}
