// Package cyclon implements the Cyclon gossip-based peer-sampling overlay
// used by the paper's One-Hop Router: each node maintains a small partial
// view of (peer, age) descriptors and periodically shuffles a random
// subset with its oldest peer, yielding a continuous stream of uniformly
// random alive peers.
package cyclon

import (
	"time"

	"repro/internal/core"
	"repro/internal/ident"
	"repro/internal/network"
	"repro/internal/status"
	"repro/internal/timer"
)

// JoinOverlay seeds the overlay with initial peers (from the bootstrap
// service).
type JoinOverlay struct {
	Seeds []ident.NodeRef
}

// GetPeers requests an immediate sample of up to N peers.
type GetPeers struct {
	N int
}

// PeersSample delivers the current view (after shuffles and on request).
type PeersSample struct {
	Peers []ident.NodeRef
}

// PortType is the NodeSampling service abstraction of the paper.
var PortType = core.NewPortType("PeerSampling",
	core.Request[JoinOverlay](),
	core.Request[GetPeers](),
	core.Indication[PeersSample](),
)

// descriptor is one view entry.
type descriptor struct {
	Node ident.NodeRef
	Age  int
}

// Wire messages.

type shuffleMsg struct {
	network.Header
	Entries []descriptor
}

type shuffleReplyMsg struct {
	network.Header
	Entries []descriptor
}

func init() {
	network.Register(shuffleMsg{})
	network.Register(shuffleReplyMsg{})
}

type shuffleTimeout struct{ timer.Timeout }

// Config parameterizes a Cyclon overlay component.
type Config struct {
	// Self is the local node reference.
	Self ident.NodeRef
	// ViewSize is the maximum partial view size (default 16).
	ViewSize int
	// ShuffleSize is the number of descriptors exchanged (default 8).
	ShuffleSize int
	// Period is the shuffle interval (default 1s).
	Period time.Duration
}

func (c *Config) applyDefaults() {
	if c.ViewSize <= 0 {
		c.ViewSize = 16
	}
	if c.ShuffleSize <= 0 {
		c.ShuffleSize = 8
	}
	if c.ShuffleSize > c.ViewSize {
		c.ShuffleSize = c.ViewSize
	}
	if c.Period <= 0 {
		c.Period = time.Second
	}
}

// Overlay is the Cyclon component: provides PeerSampling, requires Network
// and Timer.
type Overlay struct {
	cfg Config

	ctx  *core.Ctx
	smp  *core.Port
	net  *core.Port
	tmr  *core.Port
	view []descriptor
	tid  timer.ID

	shuffles uint64
}

// New creates a Cyclon overlay component definition.
func New(cfg Config) *Overlay {
	cfg.applyDefaults()
	return &Overlay{cfg: cfg}
}

var _ core.Definition = (*Overlay)(nil)

// Setup declares ports and handlers.
func (o *Overlay) Setup(ctx *core.Ctx) {
	o.ctx = ctx
	o.smp = ctx.Provides(PortType)
	o.net = ctx.Requires(network.PortType)
	o.tmr = ctx.Requires(timer.PortType)

	st := ctx.Provides(status.PortType)
	core.Subscribe(ctx, st, func(q status.Request) {
		ctx.Trigger(status.Response{ReqID: q.ReqID, Component: "cyclon", Metrics: map[string]int64{
			"view":     int64(len(o.view)),
			"shuffles": int64(o.shuffles),
		}}, st)
	})

	core.Subscribe(ctx, o.smp, o.handleJoin)
	core.Subscribe(ctx, o.smp, o.handleGetPeers)
	core.Subscribe(ctx, o.net, o.handleShuffle)
	core.Subscribe(ctx, o.net, o.handleShuffleReply)
	core.Subscribe(ctx, o.tmr, o.handleTick)
	core.Subscribe(ctx, ctx.Control(), func(core.Start) {
		o.tid = timer.NextID()
		ctx.Trigger(timer.SchedulePeriodic{
			Delay:   o.cfg.Period,
			Period:  o.cfg.Period,
			Timeout: shuffleTimeout{timer.Timeout{ID: o.tid}},
		}, o.tmr)
	})
	core.Subscribe(ctx, ctx.Control(), func(core.Stop) {
		ctx.Trigger(timer.CancelPeriodic{ID: o.tid}, o.tmr)
	})
}

func (o *Overlay) handleJoin(j JoinOverlay) {
	for _, s := range j.Seeds {
		o.insert(descriptor{Node: s})
	}
	o.publishSample()
}

func (o *Overlay) handleGetPeers(g GetPeers) {
	n := g.N
	if n <= 0 || n > len(o.view) {
		n = len(o.view)
	}
	peers := make([]ident.NodeRef, 0, n)
	perm := o.ctx.Rand().Perm(len(o.view))
	for _, i := range perm[:n] {
		peers = append(peers, o.view[i].Node)
	}
	o.ctx.Trigger(PeersSample{Peers: peers}, o.smp)
}

// handleTick runs one active shuffle: age the view, pick the oldest peer
// Q, and send it a random subset of descriptors including a fresh
// self-descriptor. This is the keep-and-refresh variant of Cyclon
// shuffling: Q is retained rather than removed (classic Cyclon removes it,
// which starves views bootstrapped far below capacity) and its age resets
// when its reply — which carries Q's own fresh descriptor — arrives, so
// active shuffling rotates over the view while unresponsive peers age out
// by replacement.
func (o *Overlay) handleTick(shuffleTimeout) {
	if len(o.view) == 0 {
		return
	}
	for i := range o.view {
		o.view[i].Age++
	}
	oldest := 0
	for i, d := range o.view {
		if d.Age > o.view[oldest].Age {
			oldest = i
		}
	}
	q := o.view[oldest].Node

	entries := o.randomSubset(o.cfg.ShuffleSize - 1)
	entries = append(entries, descriptor{Node: o.cfg.Self, Age: 0})
	o.shuffles++
	o.ctx.Trigger(shuffleMsg{
		Header:  network.NewHeader(o.cfg.Self.Addr, q.Addr),
		Entries: entries,
	}, o.net)
}

// handleShuffle is the passive side: reply with a random subset plus a
// fresh self-descriptor (refreshing this node's age in the initiator's
// view), and merge the received descriptors.
func (o *Overlay) handleShuffle(m shuffleMsg) {
	reply := o.randomSubset(o.cfg.ShuffleSize - 1)
	reply = append(reply, descriptor{Node: o.cfg.Self, Age: 0})
	o.ctx.Trigger(shuffleReplyMsg{
		Header:  network.Reply(m),
		Entries: reply,
	}, o.net)
	o.merge(m.Entries)
}

func (o *Overlay) handleShuffleReply(m shuffleReplyMsg) {
	o.merge(m.Entries)
}

// randomSubset copies up to n random descriptors from the view.
func (o *Overlay) randomSubset(n int) []descriptor {
	if n > len(o.view) {
		n = len(o.view)
	}
	if n <= 0 {
		return nil
	}
	out := make([]descriptor, 0, n)
	perm := o.ctx.Rand().Perm(len(o.view))
	for _, i := range perm[:n] {
		out = append(out, o.view[i])
	}
	return out
}

// merge inserts received descriptors, preferring them over the oldest
// entries when the view is full, and publishes a fresh sample.
func (o *Overlay) merge(entries []descriptor) {
	for _, e := range entries {
		o.insert(e)
	}
	o.publishSample()
}

// insert adds one descriptor, skipping self and duplicates (keeping the
// younger age) and evicting the oldest entry when full.
func (o *Overlay) insert(e descriptor) {
	if e.Node.Addr == o.cfg.Self.Addr {
		return
	}
	for i, d := range o.view {
		if d.Node.Addr == e.Node.Addr {
			if e.Age < d.Age {
				o.view[i] = e
			}
			return
		}
	}
	if len(o.view) < o.cfg.ViewSize {
		o.view = append(o.view, e)
		return
	}
	oldest := 0
	for i, d := range o.view {
		if d.Age > o.view[oldest].Age {
			oldest = i
		}
	}
	if e.Age < o.view[oldest].Age {
		o.view[oldest] = e
	}
}

// publishSample emits the full current view on the sampling port.
func (o *Overlay) publishSample() {
	if len(o.view) == 0 {
		return
	}
	peers := make([]ident.NodeRef, len(o.view))
	for i, d := range o.view {
		peers[i] = d.Node
	}
	o.ctx.Trigger(PeersSample{Peers: peers}, o.smp)
}

// ViewSize returns the current view occupancy (tests, status).
func (o *Overlay) ViewSize() int { return len(o.view) }

// Shuffles returns the number of active shuffles initiated.
func (o *Overlay) Shuffles() uint64 { return o.shuffles }

// View returns a copy of the current peer view.
func (o *Overlay) View() []ident.NodeRef {
	peers := make([]ident.NodeRef, len(o.view))
	for i, d := range o.view {
		peers[i] = d.Node
	}
	return peers
}
