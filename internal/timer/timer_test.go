package timer

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// tick is a user-defined timeout event, as protocols define them.
type tick struct {
	Timeout
	Label string
}

// harness wires a Real timer to a test client and returns the client's
// required port plus a received-tick counter.
type harness struct {
	rt    *core.Runtime
	real  *Real
	port  *core.Port // client's required Timer port (inner half)
	ticks atomic.Int64
	last  atomic.Value // string label
	ctx   *core.Ctx
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	h := &harness{real: NewReal()}
	h.rt = core.New(
		core.WithScheduler(core.NewWorkStealingScheduler(2)),
		core.WithFaultPolicy(core.LogAndContinue),
	)
	t.Cleanup(h.rt.Shutdown)
	h.rt.MustBootstrap("Main", core.SetupFunc(func(ctx *core.Ctx) {
		tc := ctx.Create("timer", h.real)
		cl := ctx.Create("client", core.SetupFunc(func(cx *core.Ctx) {
			h.ctx = cx
			h.port = cx.Requires(PortType)
			core.Subscribe(cx, h.port, func(ev tick) {
				h.ticks.Add(1)
				h.last.Store(ev.Label)
			})
		}))
		ctx.Connect(tc.Provided(PortType), cl.Required(PortType))
	}))
	if !h.rt.WaitQuiescence(5 * time.Second) {
		t.Fatal("no quiescence")
	}
	return h
}

// waitTicks polls until the tick count reaches want or the deadline passes.
func (h *harness) waitTicks(t *testing.T, want int64, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if h.ticks.Load() >= want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("got %d ticks, want >= %d within %v", h.ticks.Load(), want, timeout)
}

func TestOneShotTimeoutFires(t *testing.T) {
	h := newHarness(t)
	h.ctx.Trigger(ScheduleTimeout{
		Delay:   5 * time.Millisecond,
		Timeout: tick{Timeout: Timeout{ID: NextID()}, Label: "a"},
	}, h.port)
	h.waitTicks(t, 1, 2*time.Second)
	if h.last.Load().(string) != "a" {
		t.Fatalf("wrong timeout payload")
	}
	if n := h.ticks.Load(); n != 1 {
		t.Fatalf("one-shot fired %d times", n)
	}
}

func TestCancelBeforeFire(t *testing.T) {
	h := newHarness(t)
	id := NextID()
	h.ctx.Trigger(ScheduleTimeout{
		Delay:   50 * time.Millisecond,
		Timeout: tick{Timeout: Timeout{ID: id}},
	}, h.port)
	h.ctx.Trigger(CancelTimeout{ID: id}, h.port)
	time.Sleep(120 * time.Millisecond)
	if n := h.ticks.Load(); n != 0 {
		t.Fatalf("cancelled timeout fired %d times", n)
	}
	one, per := h.real.Pending()
	if one != 0 || per != 0 {
		t.Fatalf("pending after cancel: %d/%d", one, per)
	}
}

func TestPeriodicFiresRepeatedly(t *testing.T) {
	h := newHarness(t)
	id := NextID()
	h.ctx.Trigger(SchedulePeriodic{
		Delay:   time.Millisecond,
		Period:  2 * time.Millisecond,
		Timeout: tick{Timeout: Timeout{ID: id}, Label: "p"},
	}, h.port)
	h.waitTicks(t, 5, 5*time.Second)
	h.ctx.Trigger(CancelPeriodic{ID: id}, h.port)
	if !h.rt.WaitQuiescence(time.Second) {
		t.Fatal("no quiescence")
	}
	time.Sleep(20 * time.Millisecond)
	after := h.ticks.Load()
	time.Sleep(30 * time.Millisecond)
	// Allow one in-flight tick around the cancel, but the stream must stop.
	if got := h.ticks.Load(); got > after+1 {
		t.Fatalf("periodic kept firing after cancel: %d -> %d", after, got)
	}
}

func TestCancelUnknownIsNoOp(t *testing.T) {
	h := newHarness(t)
	h.ctx.Trigger(CancelTimeout{ID: 99999}, h.port)
	h.ctx.Trigger(CancelPeriodic{ID: 99999}, h.port)
	if !h.rt.WaitQuiescence(time.Second) {
		t.Fatal("no quiescence")
	}
}

func TestStopCancelsAll(t *testing.T) {
	h := newHarness(t)
	h.ctx.Trigger(ScheduleTimeout{
		Delay:   30 * time.Millisecond,
		Timeout: tick{Timeout: Timeout{ID: NextID()}},
	}, h.port)
	h.ctx.Trigger(SchedulePeriodic{
		Delay:   30 * time.Millisecond,
		Period:  10 * time.Millisecond,
		Timeout: tick{Timeout: Timeout{ID: NextID()}},
	}, h.port)
	if !h.rt.WaitQuiescence(time.Second) {
		t.Fatal("no quiescence")
	}
	h.real.cancelAll()
	time.Sleep(80 * time.Millisecond)
	if n := h.ticks.Load(); n != 0 {
		t.Fatalf("timers fired %d times after stop", n)
	}
}

func TestNextIDMonotonic(t *testing.T) {
	a, b := NextID(), NextID()
	if b <= a {
		t.Fatalf("IDs not increasing: %d then %d", a, b)
	}
}

func TestTimeoutEventInterface(t *testing.T) {
	ev := tick{Timeout: Timeout{ID: 7}}
	var te TimeoutEvent = ev
	if te.TimeoutID() != 7 {
		t.Fatalf("TimeoutID = %d, want 7", te.TimeoutID())
	}
}

func TestPeriodicZeroPeriodClamped(t *testing.T) {
	h := newHarness(t)
	id := NextID()
	h.ctx.Trigger(SchedulePeriodic{
		Delay:   0,
		Period:  0, // clamped to 1ms internally
		Timeout: tick{Timeout: Timeout{ID: id}},
	}, h.port)
	h.waitTicks(t, 2, 2*time.Second)
	h.ctx.Trigger(CancelPeriodic{ID: id}, h.port)
}
