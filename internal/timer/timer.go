// Package timer defines the Timer protocol abstraction of the paper: a port
// type accepting ScheduleTimeout / SchedulePeriodic / Cancel requests and
// delivering Timeout indications, plus the production provider backed by
// real time. The simulation provider (virtual time) lives in the simulation
// package; both satisfy the same port contract, so the identical component
// code runs under either.
package timer

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// ID identifies a scheduled timeout, for cancellation and matching.
type ID uint64

// idCounter allocates process-unique timeout IDs. Under the deterministic
// simulation scheduler all handlers run on one goroutine, so allocation
// order — and therefore every ID — is reproducible for a fixed seed.
var idCounter atomic.Uint64

// NextID allocates a fresh timeout ID.
func NextID() ID { return ID(idCounter.Add(1)) }

// TimeoutEvent is implemented by every timeout indication. Components
// define their own timeout event types by embedding Timeout, so handlers
// subscribe to exactly the timeouts they scheduled:
//
//	type pingTimeout struct{ timer.Timeout }
type TimeoutEvent interface {
	TimeoutID() ID
}

// Timeout is the embeddable base for timeout events.
type Timeout struct {
	ID ID
}

// TimeoutID implements TimeoutEvent.
func (t Timeout) TimeoutID() ID { return t.ID }

var _ TimeoutEvent = Timeout{}

// ScheduleTimeout requests a one-shot timeout: after Delay, the Timeout
// event is delivered on the Timer port.
type ScheduleTimeout struct {
	Delay   time.Duration
	Timeout TimeoutEvent
}

// SchedulePeriodic requests a periodic timeout: after Delay, and then every
// Period, the Timeout event is delivered until cancelled.
type SchedulePeriodic struct {
	Delay   time.Duration
	Period  time.Duration
	Timeout TimeoutEvent
}

// CancelTimeout cancels a pending one-shot timeout. Cancelling an already
// fired or unknown ID is a no-op.
type CancelTimeout struct {
	ID ID
}

// CancelPeriodic cancels a periodic timeout.
type CancelPeriodic struct {
	ID ID
}

// PortType is the Timer service abstraction: requests travel in the
// negative direction, Timeout indications in the positive direction.
var PortType = core.NewPortType("Timer",
	core.Request[ScheduleTimeout](),
	core.Request[SchedulePeriodic](),
	core.Request[CancelTimeout](),
	core.Request[CancelPeriodic](),
	core.Indication[TimeoutEvent](),
)

// Real is the production Timer provider (the paper's JavaTimer): it
// provides the Timer port backed by the runtime clock and time.AfterFunc.
// Timeout indications are injected from timer goroutines; ordering across
// distinct timeouts follows real time.
type Real struct {
	ctx  *core.Ctx
	port *core.Port

	mu      sync.Mutex
	oneShot map[ID]*time.Timer
	period  map[ID]*periodicState
	stopped bool
}

type periodicState struct {
	timer  *time.Timer
	cancel bool // guarded by Real.mu
}

// NewReal creates a production timer component definition.
func NewReal() *Real {
	return &Real{
		oneShot: make(map[ID]*time.Timer),
		period:  make(map[ID]*periodicState),
	}
}

var _ core.Definition = (*Real)(nil)

// Setup declares the provided Timer port and subscribes the request
// handlers.
func (r *Real) Setup(ctx *core.Ctx) {
	r.ctx = ctx
	r.port = ctx.Provides(PortType)
	core.Subscribe(ctx, r.port, r.handleSchedule)
	core.Subscribe(ctx, r.port, r.handlePeriodic)
	core.Subscribe(ctx, r.port, r.handleCancel)
	core.Subscribe(ctx, r.port, r.handleCancelPeriodic)
	core.Subscribe(ctx, ctx.Control(), func(core.Stop) { r.cancelAll() })
	core.Subscribe(ctx, ctx.Control(), func(core.Start) {
		r.mu.Lock()
		r.stopped = false
		r.mu.Unlock()
	})
}

func (r *Real) handleSchedule(st ScheduleTimeout) {
	id := st.Timeout.TimeoutID()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stopped {
		return
	}
	ev := st.Timeout
	r.oneShot[id] = time.AfterFunc(st.Delay, func() {
		r.mu.Lock()
		_, live := r.oneShot[id]
		delete(r.oneShot, id)
		stopped := r.stopped
		r.mu.Unlock()
		if live && !stopped {
			_ = core.TriggerOn(r.port, ev)
		}
	})
}

func (r *Real) handlePeriodic(sp SchedulePeriodic) {
	id := sp.Timeout.TimeoutID()
	period := sp.Period
	if period <= 0 {
		period = time.Millisecond
	}
	ps := &periodicState{}
	ev := sp.Timeout
	var fire func()
	fire = func() {
		r.mu.Lock()
		dead := ps.cancel || r.stopped
		if !dead {
			ps.timer = time.AfterFunc(period, fire)
		}
		r.mu.Unlock()
		if !dead {
			_ = core.TriggerOn(r.port, ev)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stopped {
		return
	}
	r.period[id] = ps
	ps.timer = time.AfterFunc(sp.Delay, fire)
}

func (r *Real) handleCancel(c CancelTimeout) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.oneShot[c.ID]; ok {
		t.Stop()
		delete(r.oneShot, c.ID)
	}
}

func (r *Real) handleCancelPeriodic(c CancelPeriodic) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ps, ok := r.period[c.ID]; ok {
		ps.cancel = true
		if ps.timer != nil {
			ps.timer.Stop()
		}
		delete(r.period, c.ID)
	}
}

// cancelAll stops every pending timer; used on component Stop.
func (r *Real) cancelAll() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stopped = true
	for id, t := range r.oneShot {
		t.Stop()
		delete(r.oneShot, id)
	}
	for id, ps := range r.period {
		ps.cancel = true
		if ps.timer != nil {
			ps.timer.Stop()
		}
		delete(r.period, id)
	}
}

// Pending returns the number of outstanding one-shot and periodic
// timeouts, for tests and monitoring.
func (r *Real) Pending() (oneShot, periodic int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.oneShot), len(r.period)
}
