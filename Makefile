GO ?= go

.PHONY: all build vet test test-race bench bench-dispatch ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector run; includes the deque and routing-cache stress tests in
# internal/core (concurrent push/pop/steal, subscribe/unsubscribe under fire).
test-race:
	$(GO) test -race ./...

# Full benchmark sweep (experiment macro-benchmarks take seconds per run).
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# Just the hot-path microbenchmarks: dispatch allocs and deque throughput.
bench-dispatch:
	$(GO) test -run '^$$' -bench 'BenchmarkEventDispatch|BenchmarkDispatchAllocs|BenchmarkPingPongRoundTrip|BenchmarkChannelFanout' -benchmem -count=3 .
	$(GO) test -run '^$$' -bench 'BenchmarkWSDeque' -benchmem -count=3 ./internal/core/

ci: vet build test-race
