GO ?= go

# Benchmark knobs for bench-dispatch. Fixed -cpu keeps runs comparable
# across machines and against CI; override per invocation, e.g.
#   make bench-dispatch BENCHTIME=3s BENCHCPU=8
BENCHTIME ?= 1s
BENCHCPU ?= 4

.PHONY: all help build vet test test-race bench bench-dispatch bench-gate determinism chaos ci

all: build

help:
	@echo "Targets:"
	@echo "  build           go build ./..."
	@echo "  vet             go vet ./..."
	@echo "  test            go test ./..."
	@echo "  test-race       go test -race ./... (deque/routing-cache stress tests)"
	@echo "  bench           full benchmark sweep (macro experiments included)"
	@echo "  bench-dispatch  hot-path microbenchmarks only: dispatch, fan-out,"
	@echo "                  ping-pong, deque. Pinned -benchtime $(BENCHTIME) -cpu $(BENCHCPU);"
	@echo "                  override with BENCHTIME=... BENCHCPU=..."
	@echo "  bench-gate      million-key catsbench profile (reduced scale) gated"
	@echo "                  against bench/BENCH_baseline_million.json"
	@echo "  determinism     run the simulation twice per seed and diff trace digests"
	@echo "  chaos           churn scenario under -race plus a two-run chaos report diff"
	@echo "  ci              vet + build + test-race"

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector run; includes the deque and routing-cache stress tests in
# internal/core (concurrent push/pop/steal, subscribe/unsubscribe under fire).
test-race:
	$(GO) test -race ./...

# Full benchmark sweep (experiment macro-benchmarks take seconds per run).
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# Just the hot-path microbenchmarks: dispatch allocs, batched fan-out, and
# deque throughput. -benchtime and -cpu are pinned (see BENCHTIME/BENCHCPU
# above) so results are comparable between local runs and the CI artifact.
bench-dispatch:
	$(GO) test -run '^$$' -bench 'BenchmarkEventDispatch|BenchmarkDispatchAllocs|BenchmarkPingPongRoundTrip|BenchmarkChannelFanout|BenchmarkFanout' -benchmem -benchtime $(BENCHTIME) -cpu $(BENCHCPU) -count=3 .
	$(GO) test -run '^$$' -bench 'BenchmarkWSDeque|BenchmarkStealPingPong' -benchmem -benchtime $(BENCHTIME) -cpu $(BENCHCPU) -count=3 ./internal/core/

# Local mirror of the CI bench-gate job: the reduced-scale million-key
# profile must complete cleanly within 10% of the checked-in throughput
# baseline (see bench/README.md).
bench-gate:
	$(GO) build -o /tmp/catsbench ./cmd/catsbench
	/tmp/catsbench -exp million -quick -json-dir /tmp/bench -gate bench/BENCH_baseline_million.json

# Local mirror of the CI determinism job: one seed, two runs, diff all
# deterministic output lines (wall time filtered) including the -trace digest.
determinism:
	$(GO) build -o /tmp/catssim ./cmd/catssim
	/tmp/catssim -mode sim -seed 7 -trace -boot 30 -churn 10 -lookups 200 -ops 100 -tail 10s | grep -v 'wall=' > /tmp/sim-a.txt
	/tmp/catssim -mode sim -seed 7 -trace -boot 30 -churn 10 -lookups 200 -ops 100 -tail 10s | grep -v 'wall=' > /tmp/sim-b.txt
	diff -u /tmp/sim-a.txt /tmp/sim-b.txt && echo "deterministic"

# Local mirror of the CI chaos job: the churn scenario under the race
# detector, then one seed's chaos report (with trace digest) run twice and
# diffed — crash-restart churn must be deterministic and lose nothing.
# Both the default and the long-outage (eviction + rejoin) variants run,
# and each must have completed handoff sync rounds.
chaos:
	$(GO) test -race -count=1 -run 'Churn' ./internal/experiments/
	$(GO) build -o /tmp/catssim ./cmd/catssim
	/tmp/catssim -mode chaos -seed 3 -trace > /tmp/chaos-a.txt
	/tmp/catssim -mode chaos -seed 3 -trace > /tmp/chaos-b.txt
	diff -u /tmp/chaos-a.txt /tmp/chaos-b.txt && cat /tmp/chaos-a.txt
	@! grep -q 'handoff_transfers=0 ' /tmp/chaos-a.txt || { echo "no handoff sync rounds completed"; exit 1; }
	@grep -q 'timelines=[1-9]' /tmp/chaos-a.txt || { echo "no trace timelines assembled"; exit 1; }
	/tmp/catssim -mode chaos -seed 11 -long -trace > /tmp/chaos-long-a.txt
	/tmp/catssim -mode chaos -seed 11 -long -trace > /tmp/chaos-long-b.txt
	diff -u /tmp/chaos-long-a.txt /tmp/chaos-long-b.txt && cat /tmp/chaos-long-a.txt
	@! grep -q 'handoff_transfers=0 ' /tmp/chaos-long-a.txt || { echo "no handoff sync rounds completed (long)"; exit 1; }

ci: vet build test-race
