GO ?= go

# Benchmark knobs for bench-dispatch. Fixed -cpu keeps runs comparable
# across machines and against CI; override per invocation, e.g.
#   make bench-dispatch BENCHTIME=3s BENCHCPU=8
BENCHTIME ?= 1s
BENCHCPU ?= 4

.PHONY: all help build vet test test-race bench bench-dispatch bench-gate determinism chaos gray codecswap fuzz recovery ci ci-local

all: build

help:
	@echo "Targets:"
	@echo "  build           go build ./..."
	@echo "  vet             go vet ./..."
	@echo "  test            go test ./..."
	@echo "  test-race       go test -race ./... (deque/routing-cache stress tests)"
	@echo "  bench           full benchmark sweep (macro experiments included)"
	@echo "  bench-dispatch  hot-path microbenchmarks only: dispatch, fan-out,"
	@echo "                  ping-pong, deque. Pinned -benchtime $(BENCHTIME) -cpu $(BENCHCPU);"
	@echo "                  override with BENCHTIME=... BENCHCPU=..."
	@echo "  bench-gate      million-key + WAL durability + hedge + wire-codec catsbench"
	@echo "                  profiles (reduced scale) gated against the"
	@echo "                  bench/BENCH_baseline_* floors"
	@echo "  determinism     run the simulation twice per seed and diff trace digests"
	@echo "  chaos           churn scenario under -race plus two-run chaos report diffs"
	@echo "                  (memory, long-outage, and durable WAL-backed variants)"
	@echo "  gray            gray-failure scenario (straggler pulses + overload burst):"
	@echo "                  3 seeds, two runs each diffed byte-identically, hedges and"
	@echo "                  sheds must fire, history linearizable with no lost writes"
	@echo "  codecswap       live wire-codec swap scenario: swap + flap event-stream"
	@echo "                  tests under -race, then 3 seeds run twice each and diffed"
	@echo "                  byte-identically with swaps fired and both formats on the wire"
	@echo "  fuzz            binary frame decoder fuzz targets, 30s each"
	@echo "  recovery        SIGKILL a durable cluster mid-churn, rebuild from WAL +"
	@echo "                  snapshots, assert linearizable + no lost acked writes"
	@echo "  ci              vet + build + test-race"
	@echo "  ci-local        full local mirror of the gating CI matrix (lint, tests,"
	@echo "                  alloc gates, determinism, chaos, recovery, bench-gate)"

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector run; includes the deque and routing-cache stress tests in
# internal/core (concurrent push/pop/steal, subscribe/unsubscribe under fire).
test-race:
	$(GO) test -race ./...

# Full benchmark sweep (experiment macro-benchmarks take seconds per run).
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# Just the hot-path microbenchmarks: dispatch allocs, batched fan-out, and
# deque throughput. -benchtime and -cpu are pinned (see BENCHTIME/BENCHCPU
# above) so results are comparable between local runs and the CI artifact.
bench-dispatch:
	$(GO) test -run '^$$' -bench 'BenchmarkEventDispatch|BenchmarkDispatchAllocs|BenchmarkPingPongRoundTrip|BenchmarkChannelFanout|BenchmarkFanout' -benchmem -benchtime $(BENCHTIME) -cpu $(BENCHCPU) -count=3 .
	$(GO) test -run '^$$' -bench 'BenchmarkWSDeque|BenchmarkStealPingPong' -benchmem -benchtime $(BENCHTIME) -cpu $(BENCHCPU) -count=3 ./internal/core/

# Local mirror of the CI bench-gate job: the reduced-scale million-key
# profile and the WAL durability A/B must complete cleanly within 10% of
# their checked-in throughput baselines, and the hedged-quorum A/B must
# keep beating the gray straggler's tail (see bench/README.md).
bench-gate:
	$(GO) build -o /tmp/catsbench ./cmd/catsbench
	/tmp/catsbench -exp million -quick -json-dir /tmp/bench -gate bench/BENCH_baseline_million.json
	/tmp/catsbench -exp wal -quick -json-dir /tmp/bench -wal-gate bench/BENCH_baseline_wal.json
	/tmp/catsbench -exp hedge -json-dir /tmp/bench -hedge-gate bench/BENCH_baseline_hedge.json
	/tmp/catsbench -exp codec -quick -json-dir /tmp/bench -codec-gate bench/BENCH_baseline_codec.json

# Local mirror of the CI determinism job: one seed, two runs, diff all
# deterministic output lines (wall time filtered) including the -trace digest.
determinism:
	$(GO) build -o /tmp/catssim ./cmd/catssim
	/tmp/catssim -mode sim -seed 7 -trace -boot 30 -churn 10 -lookups 200 -ops 100 -tail 10s | grep -v 'wall=' > /tmp/sim-a.txt
	/tmp/catssim -mode sim -seed 7 -trace -boot 30 -churn 10 -lookups 200 -ops 100 -tail 10s | grep -v 'wall=' > /tmp/sim-b.txt
	diff -u /tmp/sim-a.txt /tmp/sim-b.txt && echo "deterministic"

# Local mirror of the CI chaos job: the churn scenario under the race
# detector, then one seed's chaos report (with trace digest) run twice and
# diffed — crash-restart churn must be deterministic and lose nothing.
# Both the default and the long-outage (eviction + rejoin) variants run,
# and each must have completed handoff sync rounds.
chaos:
	$(GO) test -race -count=1 -run 'Churn' ./internal/experiments/
	$(GO) build -o /tmp/catssim ./cmd/catssim
	/tmp/catssim -mode chaos -seed 3 -trace > /tmp/chaos-a.txt
	/tmp/catssim -mode chaos -seed 3 -trace > /tmp/chaos-b.txt
	diff -u /tmp/chaos-a.txt /tmp/chaos-b.txt && cat /tmp/chaos-a.txt
	@! grep -q 'handoff_transfers=0 ' /tmp/chaos-a.txt || { echo "no handoff sync rounds completed"; exit 1; }
	@grep -q 'timelines=[1-9]' /tmp/chaos-a.txt || { echo "no trace timelines assembled"; exit 1; }
	/tmp/catssim -mode chaos -seed 11 -long -trace > /tmp/chaos-long-a.txt
	/tmp/catssim -mode chaos -seed 11 -long -trace > /tmp/chaos-long-b.txt
	diff -u /tmp/chaos-long-a.txt /tmp/chaos-long-b.txt && cat /tmp/chaos-long-a.txt
	@! grep -q 'handoff_transfers=0 ' /tmp/chaos-long-a.txt || { echo "no handoff sync rounds completed (long)"; exit 1; }
	# Durable variant: same churn on WAL-backed stores. The data dir must
	# start empty each run or replay shifts the (diffed) WAL counters.
	for run in a b; do \
		rm -rf /tmp/chaos-wal; \
		/tmp/catssim -mode chaos -seed 5 -trace -wal-dir /tmp/chaos-wal > /tmp/chaos-wal-$$run.txt || exit 1; \
	done
	diff -u /tmp/chaos-wal-a.txt /tmp/chaos-wal-b.txt && cat /tmp/chaos-wal-a.txt
	@grep -q 'wal_appends=[1-9]' /tmp/chaos-wal-a.txt || { echo "durable chaos produced no WAL appends"; exit 1; }

# Local mirror of the CI gray job: the gray-failure scenario (adaptive
# deadlines + hedged quorum phases + replica-side load shedding) under
# -race, then three seeds' reports each run twice and diffed — the
# injected slowness must be deterministic, the resilience machinery must
# demonstrably engage (hedges>0, sheds>0), and the client history must
# stay linearizable with zero lost acked writes.
gray:
	$(GO) test -race -count=1 -run 'Gray|HedgeBench|Hedge|Shed' ./internal/experiments/ ./internal/abd/
	$(GO) build -o /tmp/catssim ./cmd/catssim
	for seed in 3 77 4242; do \
		/tmp/catssim -mode gray -seed $$seed > /tmp/gray-$$seed-a.txt || exit 1; \
		/tmp/catssim -mode gray -seed $$seed > /tmp/gray-$$seed-b.txt || exit 1; \
		diff -u /tmp/gray-$$seed-a.txt /tmp/gray-$$seed-b.txt || exit 1; \
		cat /tmp/gray-$$seed-a.txt; \
		grep -q 'linearizable=true lost_acked_writes=0' /tmp/gray-$$seed-a.txt || { echo "seed $$seed: gray run lost acked writes"; exit 1; }; \
		grep -Eq 'hedges=[1-9][0-9]* hedge_wins=[1-9][0-9]* sheds=[1-9]' /tmp/gray-$$seed-a.txt || { echo "seed $$seed: resilience machinery never engaged"; exit 1; }; \
		grep -Eq 'slow_windows=[1-9]' /tmp/gray-$$seed-a.txt || { echo "seed $$seed: no gray faults injected"; exit 1; }; \
	done

# Local mirror of the CI codecswap job: the live-swap event-stream tests
# (zero lost/reordered frames across SwapCodec with a mid-swap redial)
# under -race, then three seeds' codecswap chaos reports each run twice
# and diffed — catssim itself exits 1 unless the history is linearizable
# with zero lost acked writes, zero codec errors, swaps > 0, and a frame
# mix spanning both wire formats.
codecswap:
	$(GO) test -race -count=1 -run 'CodecSwap|SwapCodec|SwapAllCodecs' ./internal/experiments/ ./internal/network/
	$(GO) build -o /tmp/catssim ./cmd/catssim
	for seed in 1 9 451; do \
		/tmp/catssim -mode codecswap -seed $$seed > /tmp/codecswap-$$seed-a.txt || exit 1; \
		/tmp/catssim -mode codecswap -seed $$seed > /tmp/codecswap-$$seed-b.txt || exit 1; \
		diff -u /tmp/codecswap-$$seed-a.txt /tmp/codecswap-$$seed-b.txt || exit 1; \
		cat /tmp/codecswap-$$seed-a.txt; \
	done

# Binary frame decoder fuzz targets (also run as 30s smoke in CI): the
# payload decoder must never panic or mis-frame on arbitrary bytes, the
# WireReader must latch at the first out-of-bounds read, and the framing
# layer must keep control prefixes and legal lengths disjoint.
fuzz:
	$(GO) test -run '^$$' -fuzz 'FuzzDecodePayload' -fuzztime 30s ./internal/network/
	$(GO) test -run '^$$' -fuzz 'FuzzWireReader' -fuzztime 30s ./internal/network/
	$(GO) test -run '^$$' -fuzz 'FuzzFramePrefix' -fuzztime 30s ./internal/network/

# Local mirror of the CI recovery job, one seed: phase 1 SIGKILLs its own
# process mid-churn (exit 137 is the expected outcome), phase 2 rebuilds
# the cluster from the data directory alone — twice, byte-identically —
# and must report a linearizable history with zero lost acked writes plus
# real WAL replay, snapshot, and handoff activity.
recovery:
	$(GO) test -race -count=1 -run 'Recovery|HistoryLog|ReplayCompletes' ./internal/experiments/ ./internal/abd/ ./internal/handoff/
	$(GO) build -o /tmp/catssim ./cmd/catssim
	# Phase 2 is itself durable (audit handoff appends to the WALs), so
	# determinism is asserted over the whole crash->recover pair: run the
	# pair twice from scratch and the recovery reports must match.
	for run in a b; do \
		rm -rf /tmp/recovery-local; \
		/tmp/catssim -mode recovery -phase crash -seed 3 -wal-dir /tmp/recovery-local; \
		status=$$?; [ $$status -eq 137 ] || { echo "crash phase exited $$status, want 137"; exit 1; }; \
		/tmp/catssim -mode recovery -phase recover -seed 3 -wal-dir /tmp/recovery-local > /tmp/recover-$$run.txt || exit 1; \
	done
	diff -u /tmp/recover-a.txt /tmp/recover-b.txt && cat /tmp/recover-a.txt
	@grep -q 'linearizable=true lost_acked_writes=0' /tmp/recover-a.txt || { echo "recovery lost acked writes"; exit 1; }
	@grep -q 'wal_replayed=[1-9]' /tmp/recover-a.txt || { echo "no WAL records replayed"; exit 1; }
	@grep -q 'snapshots_loaded=[1-9]' /tmp/recover-a.txt || { echo "no snapshots loaded"; exit 1; }
	@grep -q 'handoff_transfers=[1-9]' /tmp/recover-a.txt || { echo "no handoff rounds after recovery"; exit 1; }

ci: vet build test-race

# Everything the gating CI matrix runs, locally and in one command. The
# two alloc-gate suites and the scenario gates mirror .github/workflows/
# ci.yml; the -race pass is unsharded here (sharding only buys wall-clock
# on parallel runners).
ci-local: vet build
	test -z "$$(gofmt -l .)" || { gofmt -l .; exit 1; }
	$(GO) test -count=1 ./...
	$(GO) test -race -count=1 ./...
	$(GO) test -run 'ZeroAlloc' -count=1 .
	$(GO) test -run 'WALAppendSteadyStateAllocs|WALGroupSyncAllocs|VersionStringAlloc' -count=1 ./internal/kvstore/
	$(GO) test -run 'MetricsEndpoint|MetricsWriter|RegisteredMetricsSources' -count=1 ./internal/web/
	$(GO) test -run 'PhaseMetricsExposition' -count=1 ./internal/abd/
	$(GO) test -run 'ZeroAlloc|Pooled' -count=1 ./internal/network/ ./internal/abd/ ./internal/handoff/
	$(MAKE) determinism
	$(MAKE) chaos
	$(MAKE) gray
	$(MAKE) codecswap
	$(MAKE) recovery
	$(MAKE) bench-gate
