// Package repro is a from-scratch Go reproduction of "Message-Passing
// Concurrency for Scalable, Stateful, Reconfigurable Middleware" (Arad,
// Dowling, Haridi; MIDDLEWARE 2012) — the Kompics component model — and
// its CATS key-value store case study.
//
// See README.md for the overview, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for paper-vs-measured results. The
// library lives under internal/, runnable examples under examples/, and
// executables under cmd/. The benchmarks in bench_test.go regenerate the
// paper's evaluation artifacts (run: go test -bench=. -benchmem .).
package repro
