package repro

// Benchmarks regenerating the paper's evaluation artifacts (see DESIGN.md
// §3 and EXPERIMENTS.md), plus framework microbenchmarks for the design
// choices the paper calls out. Macro experiments (whole-cluster runs) take
// seconds per iteration, so testing.B typically settles at N=1; their
// results are conveyed via b.ReportMetric. The catsbench binary prints the
// same experiments as paper-style tables.

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cats"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/ident"
	"repro/internal/network"
	"repro/internal/simulation"
)

// --- Experiment benchmarks (one per table/figure) ------------------------------

// BenchmarkTable1TimeCompression reproduces Table 1: the simulated-to-real
// time ratio when simulating whole systems of N peers (paper: 475x at 64
// peers decaying to ~1x at 16384, for 4275 s of simulated time).
func BenchmarkTable1TimeCompression(b *testing.B) {
	for _, peers := range []int{64, 128, 256} {
		b.Run(fmt.Sprintf("peers=%d", peers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := experiments.Table1(2012, peers, 20*time.Second)
				b.ReportMetric(r.Compression, "x-compression")
				b.ReportMetric(float64(r.DiscreteEvents), "discrete-events")
			}
		})
	}
}

// BenchmarkC1OperationLatency reproduces the paper's §4.1 sub-millisecond
// end-to-end get/put latency claim on an in-process cluster with full
// per-message serialization (replication degree 5, as deployed on the
// paper's LAN).
func BenchmarkC1OperationLatency(b *testing.B) {
	for _, repl := range []int{3, 5} {
		b.Run(fmt.Sprintf("replication=%d", repl), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := experiments.Latency(8, repl, 1024, 300, experiments.CodecStream)
				b.ReportMetric(float64(r.Mean.Microseconds()), "mean-us/op")
				b.ReportMetric(float64(r.P99.Microseconds()), "p99-us/op")
				b.ReportMetric(100*r.SubMilli, "%sub-ms")
			}
		})
	}
}

// BenchmarkC2ThroughputScaling reproduces the paper's §4.1 scalability
// claim: aggregate read throughput grows near-linearly with cluster size
// (paper: ~100,000 reads/s at 96 machines). Throughput here is virtual-
// time ops/s of the simulated cluster; the reproduction target is the
// shape (per-node throughput roughly constant as nodes grow).
func BenchmarkC2ThroughputScaling(b *testing.B) {
	for _, nodes := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := experiments.Scaling(2012, nodes, 8, 150)
				b.ReportMetric(r.ThroughputPS, "ops/s")
				b.ReportMetric(r.PerNodePS, "ops/s/node")
			}
		})
	}
}

// BenchmarkC3StealBatching reproduces the paper's §3 work-stealing design
// claim: stealing a batch of half the victim's queue versus stealing one
// component at a time, under maximal placement imbalance. On multi-core
// hosts batching wins on wall clock; on any host the steal-operation count
// collapses by orders of magnitude (the mechanism the paper describes).
func BenchmarkC3StealBatching(b *testing.B) {
	workers := runtime.NumCPU()
	if workers < 4 {
		workers = 4
	}
	for _, batchHalf := range []bool{false, true} {
		name := "batch=one"
		if batchHalf {
			name = "batch=half"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := experiments.Stealing(workers, 256, 500, batchHalf)
				b.ReportMetric(r.EventsPerMS, "events/ms")
				b.ReportMetric(float64(r.Steals), "steal-ops")
			}
		})
	}
}

// --- Framework microbenchmarks ---------------------------------------------------

type benchPing struct{ N int }
type benchPong struct{ N int }

var benchPP = core.NewPortType("BenchPP",
	core.Request[benchPing](),
	core.Indication[benchPong](),
)

// BenchmarkEventDispatch measures one-way event delivery and handler
// execution through a port and channel (the runtime's hot path).
func BenchmarkEventDispatch(b *testing.B) {
	rt := core.New(core.WithScheduler(core.NewWorkStealingScheduler(2)))
	defer rt.Shutdown()
	var handled atomic.Int64
	done := make(chan struct{}, 1)
	target := int64(0)
	var port *core.Port
	rt.MustBootstrap("Main", core.SetupFunc(func(ctx *core.Ctx) {
		c := ctx.Create("sink", core.SetupFunc(func(cx *core.Ctx) {
			p := cx.Provides(benchPP)
			core.Subscribe(cx, p, func(benchPing) {
				if handled.Add(1) == atomic.LoadInt64(&target) {
					done <- struct{}{}
				}
			})
		}))
		port = c.Provided(benchPP)
	}))
	rt.WaitQuiescence(time.Second)

	handled.Store(0)
	atomic.StoreInt64(&target, int64(b.N))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.TriggerOn(port, benchPing{N: i})
	}
	<-done
}

// BenchmarkDispatchAllocs proves the steady-state dispatch path is
// allocation-free: routing-table hit, workItem into the component ring,
// deque push — no allocation anywhere. The event value is boxed once
// outside the loop, because converting a fresh struct to the Event
// interface each iteration would charge the benchmark one allocation that
// belongs to the caller, not to dispatch. The deque itself has dedicated
// microbenchmarks in internal/core (BenchmarkWSDequeStealHalf et al.).
func BenchmarkDispatchAllocs(b *testing.B) {
	rt := core.New(core.WithScheduler(core.NewWorkStealingScheduler(2)))
	defer rt.Shutdown()
	var handled atomic.Int64
	done := make(chan struct{}, 1)
	target := int64(0)
	var port *core.Port
	rt.MustBootstrap("Main", core.SetupFunc(func(ctx *core.Ctx) {
		c := ctx.Create("sink", core.SetupFunc(func(cx *core.Ctx) {
			p := cx.Provides(benchPP)
			core.Subscribe(cx, p, func(benchPing) {
				if handled.Add(1) == atomic.LoadInt64(&target) {
					done <- struct{}{}
				}
			})
		}))
		port = c.Provided(benchPP)
	}))
	rt.WaitQuiescence(time.Second)

	// Warm up: populate the routing table and grow the queue rings once.
	var ev core.Event = benchPing{N: 7}
	atomic.StoreInt64(&target, 1)
	handled.Store(0)
	_ = core.TriggerOn(port, ev)
	<-done
	rt.WaitQuiescence(time.Second)

	handled.Store(0)
	atomic.StoreInt64(&target, int64(b.N))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.TriggerOn(port, ev)
	}
	<-done
}

// BenchmarkPingPongRoundTrip measures a request/indication round trip
// between two components (two dispatches + two handler executions).
func BenchmarkPingPongRoundTrip(b *testing.B) {
	rt := core.New(core.WithScheduler(core.NewWorkStealingScheduler(2)))
	defer rt.Shutdown()
	done := make(chan struct{})
	var clientPort *core.Port
	var cx *core.Ctx
	total := b.N
	rt.MustBootstrap("Main", core.SetupFunc(func(ctx *core.Ctx) {
		srv := ctx.Create("server", core.SetupFunc(func(sx *core.Ctx) {
			p := sx.Provides(benchPP)
			core.Subscribe(sx, p, func(pg benchPing) {
				sx.Trigger(benchPong{N: pg.N}, p)
			})
		}))
		cli := ctx.Create("client", core.SetupFunc(func(inner *core.Ctx) {
			cx = inner
			clientPort = inner.Requires(benchPP)
			core.Subscribe(inner, clientPort, func(pg benchPong) {
				if pg.N >= total {
					close(done)
					return
				}
				inner.Trigger(benchPing{N: pg.N + 1}, clientPort)
			})
		}))
		ctx.Connect(srv.Provided(benchPP), cli.Required(benchPP))
	}))
	rt.WaitQuiescence(time.Second)

	b.ResetTimer()
	cx.Trigger(benchPing{N: 1}, clientPort)
	<-done
}

// BenchmarkChannelFanout measures publish-subscribe fan-out cost per
// connected channel (paper Figure 6).
func BenchmarkChannelFanout(b *testing.B) {
	for _, subs := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("subscribers=%d", subs), func(b *testing.B) {
			rt := core.New(core.WithScheduler(core.NewWorkStealingScheduler(2)))
			defer rt.Shutdown()
			var handled atomic.Int64
			done := make(chan struct{}, 1)
			var srvPort *core.Port
			var srvCtx *core.Ctx
			target := int64(b.N) * int64(subs)
			rt.MustBootstrap("Main", core.SetupFunc(func(ctx *core.Ctx) {
				srv := ctx.Create("server", core.SetupFunc(func(sx *core.Ctx) {
					srvCtx = sx
					srvPort = sx.Provides(benchPP)
				}))
				for i := 0; i < subs; i++ {
					cli := ctx.Create(fmt.Sprintf("c%d", i), core.SetupFunc(func(inner *core.Ctx) {
						p := inner.Requires(benchPP)
						core.Subscribe(inner, p, func(benchPong) {
							if handled.Add(1) == target {
								done <- struct{}{}
							}
						})
					}))
					ctx.Connect(srv.Provided(benchPP), cli.Required(benchPP))
				}
			}))
			rt.WaitQuiescence(time.Second)

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				srvCtx.Trigger(benchPong{N: i}, srvPort)
			}
			<-done
		})
	}
}

// BenchmarkFanout measures broadcast fan-out: one trigger crossing a port
// pair with N attached channels, each leading to a distinct subscriber
// component (the batched-forwarding hot path). Reported time is per
// broadcast (N deliveries + N handler executions); the dispatch side must
// stay allocation-free (TestFanoutZeroAlloc gates that in CI).
func BenchmarkFanout(b *testing.B) {
	for _, subs := range []int{16, 64, 256} {
		b.Run(fmt.Sprint(subs), func(b *testing.B) {
			rt := core.New(core.WithScheduler(core.NewWorkStealingScheduler(2)))
			defer rt.Shutdown()
			var handled atomic.Int64
			done := make(chan struct{}, 1)
			var srvPort *core.Port
			var srvCtx *core.Ctx
			target := int64(b.N) * int64(subs)
			rt.MustBootstrap("Main", core.SetupFunc(func(ctx *core.Ctx) {
				srv := ctx.Create("server", core.SetupFunc(func(sx *core.Ctx) {
					srvCtx = sx
					srvPort = sx.Provides(benchPP)
				}))
				for i := 0; i < subs; i++ {
					cli := ctx.Create(fmt.Sprintf("c%d", i), core.SetupFunc(func(inner *core.Ctx) {
						p := inner.Requires(benchPP)
						core.Subscribe(inner, p, func(benchPong) {
							if handled.Add(1) == target {
								done <- struct{}{}
							}
						})
					}))
					ctx.Connect(srv.Provided(benchPP), cli.Required(benchPP))
				}
			}))
			rt.WaitQuiescence(time.Second)

			// Warm up routing plans and queue rings; box the event once so
			// interface conversion isn't charged to dispatch.
			var ev core.Event = benchPong{N: 0}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				srvCtx.Trigger(ev, srvPort)
			}
			<-done
		})
	}
}

// BenchmarkSchedulerWorkers measures event throughput over many components
// as worker count grows (multi-core execution; flat on single-core hosts).
func BenchmarkSchedulerWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			rt := core.New(core.WithScheduler(core.NewWorkStealingScheduler(workers)))
			defer rt.Shutdown()
			const comps = 64
			var handled atomic.Int64
			done := make(chan struct{}, 1)
			target := int64(b.N)
			ports := make([]*core.Port, comps)
			rt.MustBootstrap("Main", core.SetupFunc(func(ctx *core.Ctx) {
				for i := 0; i < comps; i++ {
					c := ctx.Create(fmt.Sprintf("c%d", i), core.SetupFunc(func(cx *core.Ctx) {
						p := cx.Provides(benchPP)
						core.Subscribe(cx, p, func(benchPing) {
							if handled.Add(1) == target {
								done <- struct{}{}
							}
						})
					}))
					ports[i] = c.Provided(benchPP)
				}
			}))
			rt.WaitQuiescence(time.Second)

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = core.TriggerOn(ports[i%comps], benchPing{})
			}
			<-done
		})
	}
}

// BenchmarkNetworkSerialization measures the gob codec with and without
// zlib compression for a 1 KiB message (the pluggable-codec design).
func BenchmarkNetworkSerialization(b *testing.B) {
	payload := make([]byte, 1024)
	for i := range payload {
		payload[i] = byte(i % 7) // mildly compressible
	}
	msg := benchNetMsg{
		Header:  network.NewHeader(network.Address{Host: "a", Port: 1}, network.Address{Host: "b", Port: 2}),
		Payload: payload,
	}
	for _, compress := range []bool{false, true} {
		name := "gob"
		if compress {
			name = "gob+zlib"
		}
		b.Run(name, func(b *testing.B) {
			codec := network.Codec{Compress: compress}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := codec.RoundTrip(msg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("gob-stream", func(b *testing.B) {
		codec := network.NewStreamCodec()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := codec.RoundTrip(msg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

type benchNetMsg struct {
	network.Header
	Payload []byte
}

func init() {
	network.Register(benchNetMsg{})
}

// BenchmarkSimulatorEventRate measures the raw discrete-event throughput
// of the deterministic simulation engine.
func BenchmarkSimulatorEventRate(b *testing.B) {
	sim := simulation.New(1)
	n := 0
	var chain func()
	chain = func() {
		n++
		if n < b.N {
			sim.ScheduleAt(time.Microsecond, "e", chain)
		}
	}
	b.ResetTimer()
	sim.ScheduleAt(0, "start", chain)
	sim.Run(0)
	if n < b.N {
		b.Fatalf("ran %d of %d events", n, b.N)
	}
}

// BenchmarkReconfigurationSwap measures the cost of a full §2.6 hot swap
// (hold + unplug + create + plug + resume + state transfer + destroy).
func BenchmarkReconfigurationSwap(b *testing.B) {
	rt := core.New(core.WithScheduler(core.NewWorkStealingScheduler(2)))
	defer rt.Shutdown()
	var rootCtx *core.Ctx
	cur := (*core.Component)(nil)
	rt.MustBootstrap("Main", core.SetupFunc(func(ctx *core.Ctx) {
		rootCtx = ctx
		cur = ctx.Create("v0", &swapTarget{})
		sink := ctx.Create("sink", core.SetupFunc(func(cx *core.Ctx) {
			cx.Requires(benchPP)
		}))
		ctx.Connect(cur.Provided(benchPP), sink.Required(benchPP))
	}))
	rt.WaitQuiescence(time.Second)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		next, err := rootCtx.Swap(cur, fmt.Sprintf("v%d", i+1), &swapTarget{})
		if err != nil {
			b.Fatal(err)
		}
		cur = next
	}
}

// swapTarget is a minimal stateful component for swap benchmarking.
type swapTarget struct {
	state int
}

func (s *swapTarget) Setup(ctx *core.Ctx) {
	p := ctx.Provides(benchPP)
	core.Subscribe(ctx, p, func(benchPing) { s.state++ })
}

func (s *swapTarget) DumpState() any      { return s.state }
func (s *swapTarget) LoadState(state any) { s.state = state.(int) }

// BenchmarkABDOperation measures the wall cost of one linearizable
// operation driven through a simulated 5-node cluster (simulator + full
// protocol stack, virtual network).
func BenchmarkABDOperation(b *testing.B) {
	sim := simulation.New(7)
	emu := simulation.NewNetworkEmulator(sim,
		simulation.WithLatency(simulation.ConstantLatency(time.Millisecond)))
	host := cats.NewSimulator(cats.SimEnv{Sim: sim, Emu: emu}, cats.NodeConfig{
		ReplicationDegree: 3,
		FDInterval:        time.Second,
		StabilizePeriod:   time.Second,
		CyclonPeriod:      2 * time.Second,
		OpTimeout:         2 * time.Second,
	})
	var exp *core.Port
	sim.Runtime().MustBootstrap("Main", core.SetupFunc(func(ctx *core.Ctx) {
		c := ctx.Create("simulator", host)
		exp = c.Provided(cats.ExperimentPortType)
	}))
	sim.Run(0)
	for i := 0; i < 5; i++ {
		_ = core.TriggerOn(exp, cats.JoinNode{Key: ident.Key(uint64(i+1) << 60)})
		sim.Run(time.Second)
	}
	sim.Run(30 * time.Second)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.TriggerOn(exp, cats.OpPut{
			NodeKey: ident.Key(uint64(i)),
			Key:     fmt.Sprintf("bench-%d", i%64),
			Value:   []byte("value"),
		})
		sim.Run(10 * time.Second)
	}
	b.StopTimer()
	m := host.Metrics()
	if m.PutsFailed > 0 {
		b.Fatalf("%d puts failed", m.PutsFailed)
	}
}
