package repro

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// TestTelemetryDispatchZeroAlloc asserts the dispatch hot path stays
// allocation-free with telemetry enabled (the default: per-component and
// per-worker counters live, latency sampling at the default interval, no
// trace sink). Each run triggers one event and waits for its handler, so the
// measurement covers the full trigger -> route -> enqueue -> execute path on
// both the caller and the worker goroutine (AllocsPerRun counts mallocs
// process-wide).
func TestTelemetryDispatchZeroAlloc(t *testing.T) {
	rt := core.New(core.WithScheduler(core.NewWorkStealingScheduler(2)))
	defer rt.Shutdown()
	var handled atomic.Int64
	var port *core.Port
	rt.MustBootstrap("Main", core.SetupFunc(func(ctx *core.Ctx) {
		c := ctx.Create("sink", core.SetupFunc(func(cx *core.Ctx) {
			p := cx.Provides(benchPP)
			core.Subscribe(cx, p, func(benchPing) { handled.Add(1) })
		}))
		port = c.Provided(benchPP)
	}))
	rt.WaitQuiescence(time.Second)

	// Warm up: build the routing plan and grow queue rings once; the event
	// is boxed once so interface conversion isn't charged to dispatch.
	var ev core.Event = benchPing{N: 1}
	if err := core.TriggerOn(port, ev); err != nil {
		t.Fatal(err)
	}
	for handled.Load() < 1 {
		runtime.Gosched()
	}

	allocs := testing.AllocsPerRun(500, func() {
		target := handled.Load() + 1
		if err := core.TriggerOn(port, ev); err != nil {
			t.Fatal(err)
		}
		for handled.Load() < target {
			runtime.Gosched()
		}
	})
	if allocs != 0 {
		t.Fatalf("telemetry-enabled dispatch allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestFanoutZeroAlloc asserts the batched fan-out path stays allocation-free
// in steady state: one trigger on a port with many attached channels
// collects the whole broadcast into a reusable batch, enqueues per
// destination, and submits the ready set in bulk — with no per-event or
// per-destination allocation anywhere (batch scratch, queue rings, deque
// arrays, and the ready list all reach steady capacity during warm-up).
func TestFanoutZeroAlloc(t *testing.T) {
	const subs = 16
	rt := core.New(core.WithScheduler(core.NewWorkStealingScheduler(2)))
	defer rt.Shutdown()
	var handled atomic.Int64
	var port *core.Port
	rt.MustBootstrap("Main", core.SetupFunc(func(ctx *core.Ctx) {
		srv := ctx.Create("server", core.SetupFunc(func(sx *core.Ctx) {
			port = sx.Provides(benchPP)
		}))
		for i := 0; i < subs; i++ {
			cli := ctx.Create(fmt.Sprintf("client%d", i), core.SetupFunc(func(inner *core.Ctx) {
				p := inner.Requires(benchPP)
				core.Subscribe(inner, p, func(benchPong) { handled.Add(1) })
			}))
			ctx.Connect(srv.Provided(benchPP), cli.Required(benchPP))
		}
	}))
	rt.WaitQuiescence(time.Second)

	var ev core.Event = benchPong{N: 1}
	for warm := 0; warm < 3; warm++ {
		target := handled.Load() + subs
		if err := core.TriggerOn(port, ev); err != nil {
			t.Fatal(err)
		}
		for handled.Load() < target {
			runtime.Gosched()
		}
	}

	allocs := testing.AllocsPerRun(500, func() {
		target := handled.Load() + subs
		if err := core.TriggerOn(port, ev); err != nil {
			t.Fatal(err)
		}
		for handled.Load() < target {
			runtime.Gosched()
		}
	})
	if allocs != 0 {
		t.Fatalf("batched fan-out allocates %.1f allocs/op, want 0", allocs)
	}
}
