package repro

import (
	"testing"

	"repro/internal/tracing"
)

// traceAllocMsg mirrors how wire messages opt into tracing: they embed
// tracing.Context, which promotes TraceContext and satisfies
// tracing.Traced. The codec and the TCP send path type-assert this
// interface on every outgoing message — traced or not — so the assert and
// the zero-ID short-circuit are on the hot path for all traffic.
type traceAllocMsg struct {
	tracing.Context
	Seq uint64
}

// perOpTracingWork runs the tracing-layer work every operation and every
// frame pays regardless of sampling: the coordinator's sampling decision,
// the per-attempt/per-phase zero-ID guards, and the transport's Traced
// assert + context extraction. A non-zero result here would tax all
// traffic, so the CI alloc job gates it at exactly zero.
func perOpTracingWork(opID uint64, m any) uint64 {
	var spans uint64
	if tracing.Sampled(opID) {
		spans++ // never reached for the IDs the tests feed in
	}
	// Coordinator guards: unsampled ops carry a zero trace ID and every
	// span helper returns immediately on it.
	var wire tracing.Context
	if wire.Sampled() {
		spans++
	}
	// Transport: annotate an outgoing frame from the message's context.
	if tm, ok := m.(tracing.Traced); ok {
		if tc := tm.TraceContext(); tc.TraceID != 0 {
			spans++
		}
	}
	return spans
}

var traceAllocSink uint64

// TestTracingDisabledZeroAlloc pins the tracing-off hot path at 0
// allocs/op: with SampleEvery(0) no operation samples, and the decision +
// guard + frame-annotation sequence must not allocate.
func TestTracingDisabledZeroAlloc(t *testing.T) {
	prev := tracing.SetSampleEvery(0)
	defer tracing.SetSampleEvery(prev)

	var m any = &traceAllocMsg{Seq: 9} // boxed once; dispatch isn't charged for it
	op := uint64(0)
	allocs := testing.AllocsPerRun(1000, func() {
		op++
		traceAllocSink += perOpTracingWork(op, m)
	})
	if allocs != 0 {
		t.Fatalf("tracing-off per-op work allocates %.1f allocs/op, want 0", allocs)
	}
	if traceAllocSink != 0 {
		t.Fatalf("disabled tracing sampled %d ops, want 0", traceAllocSink)
	}
}

// TestTracingUnsampledZeroAlloc pins the default-sampling unsampled path
// at 0 allocs/op: tracing enabled at 1 in 64, fed operation IDs that never
// hit the sampling mask. This is the path 63 of 64 operations take in a
// default deployment, so it must stay free.
func TestTracingUnsampledZeroAlloc(t *testing.T) {
	prev := tracing.SetSampleEvery(64)
	defer tracing.SetSampleEvery(prev)

	var m any = &traceAllocMsg{Seq: 9}
	op := uint64(0)
	allocs := testing.AllocsPerRun(1000, func() {
		op += 2
		traceAllocSink += perOpTracingWork(op|1, m) // odd IDs: never n&63 == 0
	})
	if allocs != 0 {
		t.Fatalf("unsampled per-op work allocates %.1f allocs/op, want 0", allocs)
	}
	if traceAllocSink != 0 {
		t.Fatalf("unsampled run recorded %d samples, want 0", traceAllocSink)
	}
}
