// Quickstart: the paper's §2 walkthrough in Go. Defines a Ping/Pong
// protocol abstraction as a typed port, an EchoServer component providing
// it, and a Client component requiring it that drives traffic off periodic
// timeouts — demonstrating events, ports, handlers, subscriptions,
// channels, hierarchical composition, and the Timer abstraction.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/timer"
)

// --- protocol abstraction: events + port type ---------------------------------

// Ping is the request event of the PingPong protocol.
type Ping struct{ Seq int }

// Pong is the indication event.
type Pong struct{ Seq int }

// PingPongPort is the protocol abstraction: Ping requests in, Pong
// indications out.
var PingPongPort = core.NewPortType("PingPong",
	core.Request[Ping](),
	core.Indication[Pong](),
)

// --- EchoServer: provides PingPong --------------------------------------------

// EchoServer answers every Ping with a Pong carrying the same sequence
// number. Its state (count) needs no locks: handlers of one component
// execute mutually exclusively.
type EchoServer struct {
	count int
}

// Setup declares the provided port and subscribes the request handler.
func (s *EchoServer) Setup(ctx *core.Ctx) {
	port := ctx.Provides(PingPongPort)
	core.Subscribe(ctx, port, func(p Ping) {
		s.count++
		ctx.Trigger(Pong{Seq: p.Seq}, port)
	})
}

// --- Client: requires PingPong and Timer ---------------------------------------

type tick struct{ timer.Timeout }

// Client sends a Ping every 200ms and reports each Pong.
type Client struct {
	sent int
	done chan struct{}
	max  int
}

// Setup declares required ports and wires the periodic driver.
func (c *Client) Setup(ctx *core.Ctx) {
	pingPort := ctx.Requires(PingPongPort)
	timerPort := ctx.Requires(timer.PortType)

	core.Subscribe(ctx, pingPort, func(p Pong) {
		fmt.Printf("client: pong %d\n", p.Seq)
		if p.Seq == c.max {
			close(c.done)
		}
	})
	id := timer.NextID()
	core.Subscribe(ctx, timerPort, func(tick) {
		if c.sent >= c.max {
			ctx.Trigger(timer.CancelPeriodic{ID: id}, timerPort)
			return
		}
		c.sent++
		fmt.Printf("client: ping %d\n", c.sent)
		ctx.Trigger(Ping{Seq: c.sent}, pingPort)
	})
	core.Subscribe(ctx, ctx.Control(), func(core.Start) {
		ctx.Trigger(timer.SchedulePeriodic{
			Delay:   50 * time.Millisecond,
			Period:  200 * time.Millisecond,
			Timeout: tick{timer.Timeout{ID: id}},
		}, timerPort)
	})
}

// --- Main: composition ----------------------------------------------------------

func main() {
	rt := core.New() // default: multi-core work-stealing scheduler
	client := &Client{done: make(chan struct{}), max: 5}

	// Main is the root of the containment hierarchy: it creates the
	// components and connects their complementary ports with channels.
	rt.MustBootstrap("Main", core.SetupFunc(func(ctx *core.Ctx) {
		server := ctx.Create("server", &EchoServer{})
		tmr := ctx.Create("timer", timer.NewReal())
		cli := ctx.Create("client", client)
		ctx.Connect(server.Provided(PingPongPort), cli.Required(PingPongPort))
		ctx.Connect(tmr.Provided(timer.PortType), cli.Required(timer.PortType))
	}))

	select {
	case <-client.done:
		fmt.Println("quickstart: 5 round-trips completed")
	case <-time.After(10 * time.Second):
		fmt.Println("quickstart: timed out")
		os.Exit(1)
	}
	rt.Shutdown()
}
