// simulation reproduces the paper's §4.4 experiment-scenario walkthrough
// in deterministic whole-system simulation: a boot process of node joins,
// a churn process of interleaved joins and failures, and a lookup process
// — composed sequentially and in parallel with the scenario DSL, executed
// against the CATS simulator in virtual time, twice, to demonstrate
// reproducibility.
//
// Run: go run ./examples/simulation
package main

import (
	"fmt"
	"time"

	"repro/internal/cats"
	"repro/internal/core"
	"repro/internal/ident"
	"repro/internal/scenario"
	"repro/internal/simulation"
)

// buildScenario mirrors the paper's scenario1: boot, churn after boot
// terminates, lookups in parallel with churn (counts scaled down to keep
// the example fast).
func buildScenario() *scenario.Scenario {
	// The paper draws ring identifiers from [0, 2^16); our identifier
	// space is 2^64, so drawn IDs are scaled onto the full ring (<< 48).
	// Data keys hash uniformly over 2^64 and then spread across all
	// replica groups instead of wrapping onto the lowest-key nodes.
	catsJoin := func(id uint64) core.Event { return cats.JoinNode{Key: ident.Key(id << 48)} }
	catsFail := func(id uint64) core.Event { return cats.FailNode{Key: ident.Key(id << 48)} }
	catsLookup := func(node, key uint64) core.Event {
		return cats.OpLookup{NodeKey: ident.Key(node << 48), Target: ident.Key(key << 48)}
	}

	boot := scenario.NewProcess("boot").
		EventInterArrivalTime(scenario.ExponentialDuration(2 * time.Second))
	scenario.Raise1(boot, 40, catsJoin, scenario.UniformBits(16))

	churn := scenario.NewProcess("churn").
		EventInterArrivalTime(scenario.ExponentialDuration(500 * time.Millisecond))
	scenario.Raise1(churn, 10, catsJoin, scenario.UniformBits(16))
	scenario.Raise1(churn, 10, catsFail, scenario.UniformBits(16))

	catsPut := func(node, key uint64) core.Event {
		return cats.OpPut{NodeKey: ident.Key(node << 48), Key: fmt.Sprintf("key-%d", key), Value: []byte("value")}
	}
	catsGet := func(node, key uint64) core.Event {
		return cats.OpGet{NodeKey: ident.Key(node << 48), Key: fmt.Sprintf("key-%d", key)}
	}

	lookups := scenario.NewProcess("lookups").
		EventInterArrivalTime(scenario.NormalDuration(50*time.Millisecond, 10*time.Millisecond))
	scenario.Raise2(lookups, 500, catsLookup, scenario.UniformBits(16), scenario.UniformBits(14))

	// Quorum operations: puts randomly interleaved with gets (these cross
	// the emulated network, so their latencies are non-zero virtual time).
	ops := scenario.NewProcess("ops").
		EventInterArrivalTime(scenario.NormalDuration(100*time.Millisecond, 20*time.Millisecond))
	scenario.Raise2(ops, 150, catsPut, scenario.UniformBits(16), scenario.UniformBits(8))
	scenario.Raise2(ops, 150, catsGet, scenario.UniformBits(16), scenario.UniformBits(8))

	sc := scenario.New().
		Start(boot).
		StartAfterTerminationOf(churn, 2*time.Second, boot).
		StartAfterStartOf(lookups, 3*time.Second, churn).
		StartAfterStartOf(ops, 4*time.Second, churn)
	sc.TerminateAfterTerminationOf(time.Second, lookups)
	return sc
}

// runOnce executes the scenario with one seed and returns the metrics and
// run stats.
func runOnce(seed int64) (cats.Metrics, simulation.Stats) {
	sim := simulation.New(seed)
	emu := simulation.NewNetworkEmulator(sim,
		simulation.WithLatency(simulation.UniformLatency(time.Millisecond, 10*time.Millisecond)))
	host := cats.NewSimulator(cats.SimEnv{Sim: sim, Emu: emu}, cats.NodeConfig{
		ReplicationDegree: 3,
		FDInterval:        200 * time.Millisecond,
		StabilizePeriod:   300 * time.Millisecond,
		CyclonPeriod:      500 * time.Millisecond,
		OpTimeout:         time.Second,
		RouterEntryTTL:    10 * time.Second,
		RouterSweepPeriod: 2 * time.Second,
	})
	var exp *core.Port
	sim.Runtime().MustBootstrap("CatsSimulationMain", core.SetupFunc(func(ctx *core.Ctx) {
		c := ctx.Create("simulator", host)
		exp = c.Provided(cats.ExperimentPortType)
	}))
	sim.Run(0)

	sched, err := buildScenario().Generate(seed)
	if err != nil {
		panic(err)
	}
	end := scenario.ExecuteSimulated(sim, sched, exp)
	stats := sim.Run(end + 30*time.Second) // scenario + convergence tail
	return host.Metrics(), stats
}

func main() {
	const seed = 2012
	fmt.Println("simulation: running the paper's boot/churn/lookups scenario, seed", seed)
	m1, st1 := runOnce(seed)
	fmt.Printf("  run 1: joins=%d fails=%d lookups=%d (empty=%d) puts=%d/%d gets=%d/%d skipped=%d\n",
		m1.Joins, m1.Fails, m1.Lookups, m1.LookupsEmpty,
		m1.PutsOK, m1.PutsOK+m1.PutsFailed, m1.GetsOK, m1.GetsOK+m1.GetsFailed, m1.Skipped)
	n, mean, min, max := m1.LatencyStats()
	fmt.Printf("  run 1: %d op latencies: mean=%v min=%v max=%v\n", n, mean, min, max)
	fmt.Printf("  run 1: %v\n", st1)

	m2, _ := runOnce(seed)
	same := m1.Joins == m2.Joins && m1.Fails == m2.Fails &&
		m1.Lookups == m2.Lookups && len(m1.OpLatencies) == len(m2.OpLatencies)
	if same {
		for i := range m1.OpLatencies {
			if m1.OpLatencies[i] != m2.OpLatencies[i] {
				same = false
				break
			}
		}
	}
	fmt.Printf("  run 2 identical to run 1: %v (deterministic simulation)\n", same)

	m3, _ := runOnce(seed + 1)
	fmt.Printf("  different seed: joins=%d fails=%d lookups=%d (a different run)\n",
		m3.Joins, m3.Fails, m3.Lookups)
}
