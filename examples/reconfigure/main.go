// reconfigure demonstrates the paper's §2.6 dynamic reconfiguration: a
// live component is hot-swapped for a new implementation while traffic
// flows — channels are held, unplugged, replugged and resumed, state is
// transferred, and not a single event is dropped.
//
// Run: go run ./examples/reconfigure
package main

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
)

// Count is the request; Counted is the indication carrying the total and
// the serving implementation's version.
type Count struct{}
type Counted struct {
	Total   int
	Version string
}

// CounterPort is the protocol abstraction.
var CounterPort = core.NewPortType("Counter",
	core.Request[Count](),
	core.Indication[Counted](),
)

// CounterV1 is the original implementation.
type CounterV1 struct {
	mu    sync.Mutex
	total int
}

func (c *CounterV1) Setup(ctx *core.Ctx) {
	port := ctx.Provides(CounterPort)
	core.Subscribe(ctx, port, func(Count) {
		c.mu.Lock()
		c.total++
		t := c.total
		c.mu.Unlock()
		ctx.Trigger(Counted{Total: t, Version: "v1"}, port)
	})
}

// DumpState transfers the running total into a replacement.
func (c *CounterV1) DumpState() any {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// CounterV2 is the upgraded implementation (same protocol, new version
// tag). It can be initialized from V1's dumped state.
type CounterV2 struct {
	mu    sync.Mutex
	total int
}

func (c *CounterV2) Setup(ctx *core.Ctx) {
	port := ctx.Provides(CounterPort)
	core.Subscribe(ctx, port, func(Count) {
		c.mu.Lock()
		c.total++
		t := c.total
		c.mu.Unlock()
		ctx.Trigger(Counted{Total: t, Version: "v2"}, port)
	})
}

// LoadState implements core.StateLoader.
func (c *CounterV2) LoadState(state any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.total = state.(int)
}

var (
	_ core.StateDumper = (*CounterV1)(nil)
	_ core.StateLoader = (*CounterV2)(nil)
)

// driver fires Count requests and records every Counted reply.
type driver struct {
	port    *core.Port
	ctx     *core.Ctx
	mu      sync.Mutex
	replies []Counted
}

func (d *driver) Setup(ctx *core.Ctx) {
	d.ctx = ctx
	d.port = ctx.Requires(CounterPort)
	core.Subscribe(ctx, d.port, func(c Counted) {
		d.mu.Lock()
		d.replies = append(d.replies, c)
		d.mu.Unlock()
	})
}

func main() {
	rt := core.New()
	defer rt.Shutdown()

	drv := &driver{}
	var rootCtx *core.Ctx
	var v1 *core.Component
	rt.MustBootstrap("Main", core.SetupFunc(func(ctx *core.Ctx) {
		rootCtx = ctx
		v1 = ctx.Create("counter-v1", &CounterV1{})
		d := ctx.Create("driver", drv)
		ctx.Connect(v1.Provided(CounterPort), d.Required(CounterPort))
	}))
	rt.WaitQuiescence(5 * time.Second)

	// Stream requests from a background goroutine while we swap.
	const total = 1000
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < total; i++ {
			drv.ctx.Trigger(Count{}, drv.port)
			if i%100 == 0 {
				time.Sleep(time.Millisecond)
			}
		}
	}()

	time.Sleep(2 * time.Millisecond) // let some v1 traffic through
	fmt.Println("reconfigure: hot-swapping counter-v1 -> counter-v2 under load")
	if _, err := rootCtx.Swap(v1, "counter-v2", &CounterV2{}); err != nil {
		panic(err)
	}
	<-done
	rt.WaitQuiescence(10 * time.Second)

	drv.mu.Lock()
	defer drv.mu.Unlock()
	v1Count, v2Count := 0, 0
	for i, r := range drv.replies {
		if r.Total != i+1 {
			fmt.Printf("LOST OR REORDERED at %d: total=%d\n", i, r.Total)
			return
		}
		if r.Version == "v1" {
			v1Count++
		} else {
			v2Count++
		}
	}
	fmt.Printf("reconfigure: %d replies, contiguous totals 1..%d — no event lost\n",
		len(drv.replies), len(drv.replies))
	fmt.Printf("reconfigure: %d served by v1, %d served by v2; state carried across swap\n",
		v1Count, v2Count)
}
