// kvcluster boots a five-node CATS key-value store inside one process —
// the paper's local interactive execution mode — over the in-process
// loopback transport with full message serialization, waits for the ring
// to converge, then performs linearizable puts and gets through different
// coordinator nodes.
//
// Run: go run ./examples/kvcluster
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/abd"
	"repro/internal/cats"
	"repro/internal/core"
	"repro/internal/ident"
	"repro/internal/network"
)

// client drives PutGet traffic through its required PutGet port (wired by
// the parent to one node's provided port) and reports responses on
// channels.
type client struct {
	target *core.Port // own required PutGet (inner)
	ctx    *core.Ctx
	gets   chan abd.GetResponse
	puts   chan abd.PutResponse
}

func (c *client) Setup(ctx *core.Ctx) {
	c.ctx = ctx
	c.target = ctx.Requires(abd.PutGetPortType)
	core.Subscribe(ctx, c.target, func(g abd.GetResponse) { c.gets <- g })
	core.Subscribe(ctx, c.target, func(p abd.PutResponse) { c.puts <- p })
}

func main() {
	const n = 5
	registry := network.NewLoopbackRegistry(
		network.WithCodec(network.Codec{Compress: true}), // full marshalling path
	)
	env := cats.LoopbackEnv{Registry: registry}

	rt := core.New()
	defer rt.Shutdown()

	// Build node configs: node 0 founds the ring, the rest join through it.
	refs := make([]ident.NodeRef, n)
	for i := range refs {
		refs[i] = ident.NodeRef{
			Key:  ident.Key(uint64(i) * (1 << 60)),
			Addr: network.Address{Host: fmt.Sprintf("node-%d", i), Port: 7000},
		}
	}

	peers := make([]*cats.Peer, n)
	clients := make([]*client, n)
	rt.MustBootstrap("CatsLocalMain", core.SetupFunc(func(ctx *core.Ctx) {
		for i := range refs {
			cfg := cats.NodeConfig{
				Self:              refs[i],
				ReplicationDegree: 3,
				FDInterval:        100 * time.Millisecond,
				StabilizePeriod:   100 * time.Millisecond,
				CyclonPeriod:      200 * time.Millisecond,
				OpTimeout:         500 * time.Millisecond,
			}
			if i > 0 {
				cfg.Seeds = []ident.NodeRef{refs[0]}
			}
			peers[i] = cats.NewPeer(env, cfg)
			comp := ctx.Create(fmt.Sprintf("peer-%d", i), peers[i])
			clients[i] = &client{
				gets: make(chan abd.GetResponse, 16),
				puts: make(chan abd.PutResponse, 16),
			}
			clC := ctx.Create(fmt.Sprintf("client-%d", i), clients[i])
			ctx.Connect(comp.Provided(abd.PutGetPortType), clC.Required(abd.PutGetPortType))
		}
	}))

	// Wait for ring convergence.
	fmt.Println("kvcluster: waiting for ring convergence...")
	deadline := time.Now().Add(30 * time.Second)
	for {
		joined := 0
		for _, p := range peers {
			if p.Node != nil && p.Node.Ring.Joined() && len(p.Node.Ring.Succs()) > 0 {
				joined++
			}
		}
		if joined == n {
			break
		}
		if time.Now().After(deadline) {
			fmt.Println("kvcluster: ring did not converge")
			os.Exit(1)
		}
		time.Sleep(50 * time.Millisecond)
	}
	time.Sleep(2 * time.Second) // let membership tables fill
	fmt.Printf("kvcluster: %d nodes joined the ring\n", n)

	// Put through node 1, get through every node.
	put := func(via int, key, value string) {
		id := cats.NextReqID()
		clients[via].ctx.Trigger(abd.PutRequest{ReqID: id, Key: key, Value: []byte(value)}, clients[via].target)
		select {
		case resp := <-clients[via].puts:
			if resp.Err != "" {
				fmt.Printf("put %s via node %d: error %s\n", key, via, resp.Err)
				os.Exit(1)
			}
			fmt.Printf("put %s=%s via node %d: ok\n", key, value, via)
		case <-time.After(10 * time.Second):
			fmt.Println("put timed out")
			os.Exit(1)
		}
	}
	get := func(via int, key string) string {
		id := cats.NextReqID()
		clients[via].ctx.Trigger(abd.GetRequest{ReqID: id, Key: key}, clients[via].target)
		select {
		case resp := <-clients[via].gets:
			if resp.Err != "" || !resp.Found {
				fmt.Printf("get %s via node %d: err=%q found=%v\n", key, via, resp.Err, resp.Found)
				os.Exit(1)
			}
			return string(resp.Value)
		case <-time.After(10 * time.Second):
			fmt.Println("get timed out")
			os.Exit(1)
			return ""
		}
	}

	put(1, "greeting", "hello from CATS")
	put(2, "answer", "42")
	for i := 0; i < n; i++ {
		fmt.Printf("get greeting via node %d: %q\n", i, get(i, "greeting"))
	}
	if got := get(4, "answer"); got != "42" {
		fmt.Printf("unexpected value %q\n", got)
		os.Exit(1)
	}
	fmt.Println("kvcluster: linearizable reads from every coordinator — done")
}
