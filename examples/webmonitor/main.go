// webmonitor deploys the paper's full Figure 10 architecture inside one
// process — a bootstrap server, a monitoring server with a web interface,
// and three CATS nodes with web interfaces, all over real TCP sockets —
// then interacts with the system over HTTP exactly as a user would:
// putting and getting keys through different nodes' web UIs, reading a
// node status page, and reading the aggregated global view.
//
// Run: go run ./examples/webmonitor
package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/bootstrap"
	"repro/internal/cats"
	"repro/internal/core"
	"repro/internal/ident"
	"repro/internal/monitor"
	"repro/internal/network"
	"repro/internal/timer"
	"repro/internal/web"
)

func freeAddr() network.Address {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	port := ln.Addr().(*net.TCPAddr).Port
	_ = ln.Close()
	return network.Address{Host: "127.0.0.1", Port: uint16(port)}
}

func get(url string) (int, string) {
	resp, err := http.Get(url)
	if err != nil {
		fmt.Println("webmonitor: http error:", err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

// tryGet is get but tolerant of servers that have not bound yet.
func tryGet(url string) (int, string, bool) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, "", false
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body), true
}

func main() {
	bsAddr := freeAddr()
	monAddr := freeAddr()
	monWeb := freeAddr()

	rt := core.New(core.WithFaultPolicy(core.LogAndContinue))
	defer rt.Shutdown()

	const n = 3
	nodeWebs := make([]network.Address, n)
	for i := range nodeWebs {
		nodeWebs[i] = freeAddr()
	}

	rt.MustBootstrap("Main", core.SetupFunc(func(ctx *core.Ctx) {
		// Bootstrap server (BootstrapServerMain).
		bsNet := ctx.Create("bs-net", network.NewTCP(bsAddr))
		bsTmr := ctx.Create("bs-timer", timer.NewReal())
		bs := ctx.Create("bootstrap", bootstrap.NewServer(bootstrap.ServerConfig{
			Self:       bsAddr,
			EvictAfter: 10 * time.Second,
		}))
		ctx.Connect(bs.Required(network.PortType), bsNet.Provided(network.PortType))
		ctx.Connect(bs.Required(timer.PortType), bsTmr.Provided(timer.PortType))

		// Monitor server with web bridge (MonitorServerMain).
		monNet := ctx.Create("mon-net", network.NewTCP(monAddr))
		mon := ctx.Create("monitor", monitor.NewServer(monitor.ServerConfig{Self: monAddr}))
		ctx.Connect(mon.Required(network.PortType), monNet.Provided(network.PortType))
		monBridge := ctx.Create("mon-web", web.NewBridge(web.BridgeConfig{Listen: monWeb.String()}))
		ctx.Connect(mon.Provided(web.PortType), monBridge.Required(web.PortType))

		// Three CATS nodes (CatsNodeMain × 3), each with its own web UI.
		for i := 0; i < n; i++ {
			self := ident.NodeRef{Key: ident.Key(uint64(i+1) << 60), Addr: freeAddr()}
			peer := cats.NewPeer(cats.TCPEnv{}, cats.NodeConfig{
				Self:              self,
				BootstrapServer:   bsAddr,
				MonitorServer:     monAddr,
				ReplicationDegree: 3,
				FDInterval:        200 * time.Millisecond,
				StabilizePeriod:   150 * time.Millisecond,
				CyclonPeriod:      300 * time.Millisecond,
				MonitorPeriod:     time.Second,
				OpTimeout:         2 * time.Second,
			})
			pc := ctx.Create(fmt.Sprintf("node-%d", i), peer)
			bridge := ctx.Create(fmt.Sprintf("node-web-%d", i),
				web.NewBridge(web.BridgeConfig{Listen: nodeWebs[i].String()}))
			ctx.Connect(pc.Provided(web.PortType), bridge.Required(web.PortType))
		}
	}))

	fmt.Println("webmonitor: waiting for the ring to assemble via the bootstrap service...")
	deadline := time.Now().Add(60 * time.Second)
	for {
		// Converged: every node joined and its one-hop router knows the
		// other two (the status page exposes the router table size).
		ready := 0
		for i := 0; i < n; i++ {
			code, body, ok := tryGet(fmt.Sprintf("http://%s/status", nodeWebs[i]))
			if ok && code == 200 && strings.Contains(body, "joined=true") &&
				strings.Contains(body, fmt.Sprintf("table=%d", n-1)) {
				ready++
			}
		}
		if ready == n {
			break
		}
		if time.Now().After(deadline) {
			fmt.Println("webmonitor: membership did not converge in time")
			for i := 0; i < n; i++ {
				_, body, _ := tryGet(fmt.Sprintf("http://%s/status", nodeWebs[i]))
				fmt.Printf("--- node %d ---\n%s\n", i, body)
			}
			os.Exit(1)
		}
		time.Sleep(200 * time.Millisecond)
	}
	time.Sleep(time.Second) // first monitor reports

	// Interact over HTTP, through different nodes.
	code, body := get(fmt.Sprintf("http://%s/put?key=city&value=montreal", nodeWebs[0]))
	fmt.Printf("PUT via node 0: %d %s\n", code, body)
	code, body = get(fmt.Sprintf("http://%s/get?key=city", nodeWebs[2]))
	fmt.Printf("GET via node 2: %d %s\n", code, body)
	if body != "montreal" {
		fmt.Println("webmonitor: linearizable read failed")
		os.Exit(1)
	}

	code, body = get(fmt.Sprintf("http://%s/status", nodeWebs[1]))
	fmt.Printf("node 1 status page: %d, %d bytes", code, len(body))
	for _, comp := range []string{"ping-fd", "cyclon", "ring", "one-hop-router", "consistent-abd"} {
		if !strings.Contains(body, comp) {
			fmt.Printf(" (missing %s!)", comp)
		}
	}
	fmt.Println()

	// Global view aggregated by the monitoring service.
	deadline = time.Now().Add(15 * time.Second)
	for {
		code, body = get(fmt.Sprintf("http://%s/", monWeb))
		if code == 200 && strings.Contains(body, "Global view: 3 nodes") {
			fmt.Printf("monitor global view: %d, shows 3 nodes with component metrics\n", code)
			break
		}
		if time.Now().After(deadline) {
			fmt.Printf("monitor global view incomplete:\n%s\n", body)
			os.Exit(1)
		}
		time.Sleep(300 * time.Millisecond)
	}
	fmt.Println("webmonitor: full deployment architecture verified over HTTP")
}
