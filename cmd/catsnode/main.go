// catsnode runs one production CATS node: TCP transport, real timers, an
// embedded web server for status and interactive get/put, and optional
// bootstrap and monitoring clients — the paper's Figure 10 (right)
// deployment architecture.
//
// Examples:
//
//	# found a fresh ring
//	catsnode -addr 10.0.0.1:7000 -web 10.0.0.1:8080
//
//	# join through a seed
//	catsnode -addr 10.0.0.2:7000 -seeds 10.0.0.1:7000 -web 10.0.0.2:8080
//
//	# with bootstrap and monitoring services
//	catsnode -addr 10.0.0.3:7000 -bootstrap 10.0.0.9:7100 -monitor 10.0.0.9:7200
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/cats"
	"repro/internal/core"
	"repro/internal/ident"
	"repro/internal/kvstore"
	"repro/internal/network"
	"repro/internal/tracing"
	"repro/internal/web"
)

func main() {
	var (
		addrS      = flag.String("addr", "127.0.0.1:7000", "node address (host:port)")
		key        = flag.Uint64("key", 0, "ring key (0: hash of address)")
		seedsS     = flag.String("seeds", "", "comma-separated seed nodes (key@host:port or host:port)")
		bootstrapS = flag.String("bootstrap", "", "bootstrap server address (overrides -seeds)")
		monitorS   = flag.String("monitor", "", "monitor server address")
		webS       = flag.String("web", "", "web UI listen address (empty: disabled)")
		replicas   = flag.Int("replication", 3, "replication degree")
		compress   = flag.Bool("compress", false, "zlib-compress network messages")
		wireCodec  = flag.String("wire-codec", "", fmt.Sprintf("wire codec backend: %s (empty: gob, or gob+zlib with -compress)", strings.Join(network.CodecNames(), " | ")))
		pprofOn    = flag.Bool("pprof", false, "expose /debug/pprof/ on the web listener")
		traceEvery = flag.Int("trace-sample", 64, "trace one operation in N (rounded up to a power of two; 1: every op, 0: tracing off)")

		dataDir    = flag.String("data-dir", "", "durable storage directory: per-shard WAL + snapshots, replayed on boot (empty: memory only)")
		walSync    = flag.String("wal-sync", "always", "WAL sync policy: always | interval | never (with -data-dir)")
		walSyncInt = flag.Duration("wal-sync-interval", kvstore.DefaultSyncEvery, "group-fsync period for -wal-sync=interval")
		snapBytes  = flag.Int64("snapshot-bytes", kvstore.DefaultSnapshotBytes, "per-shard WAL size that triggers a snapshot and log truncation")
	)
	flag.Parse()
	tracing.SetSampleEvery(*traceEvery)

	addr, err := network.ParseAddress(*addrS)
	if err != nil {
		fatal(err)
	}
	self := ident.NodeRef{Key: ident.Key(*key), Addr: addr}
	if *key == 0 {
		self.Key = ident.KeyOfString(addr.String())
	}

	cfg := cats.NodeConfig{Self: self, ReplicationDegree: *replicas}
	if *dataDir != "" {
		cfg.DataDir = *dataDir
		if cfg.WALSync, err = kvstore.ParseSyncPolicy(*walSync); err != nil {
			fatal(err)
		}
		cfg.WALSyncEvery = *walSyncInt
		cfg.WALSnapshotBytes = *snapBytes
	}
	if *bootstrapS != "" {
		if cfg.BootstrapServer, err = network.ParseAddress(*bootstrapS); err != nil {
			fatal(err)
		}
	} else if *seedsS != "" {
		for _, s := range strings.Split(*seedsS, ",") {
			ref, err := ident.ParseNodeRef(strings.TrimSpace(s))
			if err != nil {
				fatal(err)
			}
			cfg.Seeds = append(cfg.Seeds, ref)
		}
	}
	if *monitorS != "" {
		if cfg.MonitorServer, err = network.ParseAddress(*monitorS); err != nil {
			fatal(err)
		}
		// Advertise the web listener so the monitor's /federate endpoint
		// can scrape this node's /metrics.
		cfg.MetricsURL = *webS
	}

	if *wireCodec != "" {
		if _, ok := network.CodecByName(*wireCodec); !ok {
			fatal(fmt.Errorf("unknown -wire-codec %q (have: %s)", *wireCodec, strings.Join(network.CodecNames(), ", ")))
		}
		cfg.WireCodec = *wireCodec
	}
	env := cats.TCPEnv{Compress: *compress, WireCodec: *wireCodec}
	rt := core.New()
	peer := cats.NewPeer(env, cfg)
	rt.MustBootstrap("CatsNodeMain", core.SetupFunc(func(ctx *core.Ctx) {
		peerC := ctx.Create("peer", peer)
		if *webS != "" {
			bridge := ctx.Create("web", web.NewBridge(web.BridgeConfig{Listen: *webS, EnablePprof: *pprofOn}))
			ctx.Connect(peerC.Provided(web.PortType), bridge.Required(web.PortType))
		}
	}))

	fmt.Printf("catsnode: %s up (replication=%d", self, *replicas)
	if *dataDir != "" {
		fmt.Printf(", wal %s sync=%s", *dataDir, *walSync)
	}
	if *webS != "" {
		fmt.Printf(", web http://%s/status, metrics http://%s/metrics, spans http://%s/debug/trace", *webS, *webS, *webS)
	}
	fmt.Println(")")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case <-sig:
		fmt.Println("catsnode: shutting down")
	case <-rt.Halted():
		fmt.Println("catsnode: runtime halted:", rt.HaltErr())
	}
	rt.Shutdown()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "catsnode:", err)
	os.Exit(1)
}
