// bootstrapd runs the standalone bootstrap server (the paper's
// BootstrapServerMain): it maintains the list of online nodes for a system
// instance, answers peer queries from joining nodes, and evicts nodes
// whose keep-alives stop.
//
//	bootstrapd -addr 10.0.0.9:7100
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/bootstrap"
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/timer"
)

func main() {
	var (
		addrS      = flag.String("addr", "127.0.0.1:7100", "listen address (host:port)")
		evictAfter = flag.Duration("evict-after", 5*time.Second, "evict nodes silent for this long")
	)
	flag.Parse()

	addr, err := network.ParseAddress(*addrS)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bootstrapd:", err)
		os.Exit(1)
	}

	rt := core.New()
	rt.MustBootstrap("BootstrapServerMain", core.SetupFunc(func(ctx *core.Ctx) {
		tr := ctx.Create("net", network.NewTCP(addr))
		tm := ctx.Create("timer", timer.NewReal())
		srv := ctx.Create("server", bootstrap.NewServer(bootstrap.ServerConfig{
			Self:       addr,
			EvictAfter: *evictAfter,
		}))
		ctx.Connect(srv.Required(network.PortType), tr.Provided(network.PortType))
		ctx.Connect(srv.Required(timer.PortType), tm.Provided(timer.PortType))
	}))
	fmt.Printf("bootstrapd: serving on %s (evict after %v)\n", addr, *evictAfter)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case <-sig:
	case <-rt.Halted():
		fmt.Println("bootstrapd: runtime halted:", rt.HaltErr())
	}
	rt.Shutdown()
}
