// catssim runs a scenario-driven CATS experiment, in either of the paper's
// two whole-system execution modes:
//
//   - -mode sim: deterministic simulation in virtual time (Figure 12 left)
//     — thousands of nodes in one process, reproducible for a fixed seed;
//   - -mode local: real-time execution over the in-process loopback
//     network (Figure 12 right) — the local interactive stress-test mode.
//   - -mode chaos: the robustness gate — quorum reads/writes through
//     crash-restart churn and link flaps in virtual time, asserting
//     linearizability and zero lost acknowledged writes (exit 1 on
//     violation). Byte-identical output per seed; CI diffs it.
//   - -mode gray: the gray-failure gate — straggler pulses (slow, never
//     dead, replicas) and a shed-inducing burst; asserts linearizability,
//     zero lost acked writes, AND that the resilience machinery engaged
//     (hedges fired, replicas shed). Byte-identical output per seed.
//
// The identical system code (the CATS node composite and the simulator
// host component) runs in both modes; only the injected transport, timer,
// and scheduler differ.
//
//	catssim -mode sim -boot 1000 -churn 500 -lookups 5000 -seed 42
package main

import (
	"flag"
	"fmt"
	"hash"
	"hash/fnv"
	"os"
	"time"

	"repro/internal/cats"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/ident"
	"repro/internal/network"
	"repro/internal/scenario"
	"repro/internal/simulation"
)

func main() {
	var (
		mode    = flag.String("mode", "sim", "execution mode: sim | local | chaos | gray | recovery | codecswap")
		seed    = flag.Int64("seed", 42, "random seed (schedule and simulation)")
		boot    = flag.Int("boot", 100, "nodes joined by the boot process")
		churn   = flag.Int("churn", 50, "churn events (half joins, half failures)")
		lookups = flag.Int("lookups", 1000, "ring lookups issued")
		ops     = flag.Int("ops", 200, "put/get operations issued (half each)")
		tail    = flag.Duration("tail", 30*time.Second, "extra run time after the scenario ends")
		trace   = flag.Bool("trace", false, "sim mode: digest every handler execution and print it (determinism check)")
		long    = flag.Bool("long", false, "chaos mode: long-outage variant (crash windows double the suspicion threshold)")
		phase   = flag.String("phase", "", "recovery mode: crash (run workload, SIGKILL the whole cluster) | recover (rebuild from -wal-dir and audit)")
		walDir  = flag.String("wal-dir", "", "recovery mode: data directory root holding per-node WAL/snapshot state; chaos mode: run durable (must start empty for a deterministic diff)")
	)
	flag.Parse()

	if *mode == "chaos" {
		runChaos(*seed, *trace, *long, *walDir)
		return
	}
	if *mode == "gray" {
		runGray(*seed)
		return
	}
	if *mode == "recovery" {
		runRecovery(*seed, *phase, *walDir)
		return
	}
	if *mode == "codecswap" {
		runCodecSwap(*seed)
		return
	}

	sc := buildScenario(*boot, *churn, *lookups, *ops)
	sched, err := sc.Generate(*seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "catssim:", err)
		os.Exit(1)
	}
	fmt.Printf("catssim: scenario has %d commands over %v (seed %d)\n",
		len(sched.Events), sched.End.Round(time.Millisecond), *seed)

	nodeCfg := cats.NodeConfig{
		ReplicationDegree: 3,
		FDInterval:        200 * time.Millisecond,
		StabilizePeriod:   300 * time.Millisecond,
		CyclonPeriod:      500 * time.Millisecond,
		OpTimeout:         time.Second,
		RouterEntryTTL:    10 * time.Second,
		RouterSweepPeriod: 2 * time.Second,
	}

	switch *mode {
	case "sim":
		runSimulated(*seed, sched, nodeCfg, *tail, *trace)
	case "local":
		runLocal(sched, nodeCfg, *tail)
	default:
		fmt.Fprintf(os.Stderr, "catssim: unknown mode %q\n", *mode)
		os.Exit(1)
	}
}

// runChaos runs the crash-restart churn scenario (experiments.Churn) and
// exits non-zero unless the recorded history is linearizable with zero
// lost acknowledged writes. Output is purely virtual-time derived, so two
// runs with one seed must print byte-identical reports — the CI chaos job
// diffs them (plus the trace digest under -trace). With -wal-dir the
// cluster runs on durable stores (WAL counters in the report become
// non-zero); the directory must start empty for the diff to hold, since
// replaying a previous run's state shifts the counters.
func runChaos(seed int64, trace, long bool, walDir string) {
	var digest *traceDigest
	simOpts := []simulation.SimOption{}
	if trace {
		digest = newTraceDigest()
		simOpts = append(simOpts, simulation.WithTraceSink(digest))
	}
	cfg := experiments.ChurnConfig{}
	variant := "default"
	if long {
		cfg = experiments.LongOutageChurnConfig()
		variant = "long-outage"
	}
	cfg.DataDir = walDir
	if walDir != "" {
		variant += "+durable"
	}
	r := experiments.Churn(seed, cfg, simOpts...)
	fmt.Printf("catssim chaos: seed=%d variant=%s nodes=%d keys=%d simulated=%v events=%d execs=%d\n",
		seed, variant, r.Nodes, r.Keys, r.SimulatedDuration, r.DiscreteEvents, r.HandlerExecutions)
	fmt.Printf("  acked_puts=%d ok_gets=%d failed_puts=%d failed_gets=%d unresolved=%d\n",
		r.AckedPuts, r.OKGets, r.FailedPuts, r.FailedGets, r.UnresolvedOps)
	fmt.Printf("  crashes=%d restarts=%d flaps=%d churn_dropped=%d\n",
		r.Crashes, r.Restarts, r.Flaps, r.ChurnDropped)
	fmt.Printf("  handoff_keys=%d handoff_bytes=%d handoff_transfers=%d max_epoch=%d\n",
		r.HandoffKeys, r.HandoffBytes, r.HandoffTransfers, r.MaxEpoch)
	fmt.Printf("  store_keys=%d store_shards_in_use=%d store_max_shard_share=%.2f\n",
		r.StoreKeys, r.StoreShardsInUse, r.StoreMaxShardShare)
	fmt.Printf("  durability: wal_appends=%d wal_syncs=%d wal_snapshots=%d wal_replays=%d wal_errors=%d\n",
		r.WALAppends, r.WALSyncs, r.WALSnapshots, r.WALReplays, r.WALErrors)
	fmt.Printf("  linearizable=%t lost_acked_writes=%d\n", r.Linearizable, r.LostAckedWrites)
	fmt.Printf("  spans=%d timelines=%d cross_node=%d restart_traces=%d trace_digest=%016x\n",
		r.TraceSpans, r.TraceTimelines, r.CrossNodeTraces, r.RestartTraces, r.TraceDigest)
	if digest != nil {
		fmt.Printf("  trace: records=%d digest=%016x\n", digest.n, digest.h.Sum64())
	}
	if !r.Linearizable || r.LostAckedWrites != 0 {
		// Cite the offending operations' assembled cross-node timelines so
		// the failure is debuggable from the report alone.
		for _, tl := range r.ViolationTimelines() {
			fmt.Fprintf(os.Stderr, "catssim chaos: implicated op: trace=%s %s key=%s outcome=%s restarts=%d nodes=%v spans=%d\n",
				tl.TraceHex, tl.Name, tl.Key, tl.Outcome, tl.Restarts, tl.Nodes, len(tl.Spans))
			for _, s := range tl.Spans {
				fmt.Fprintf(os.Stderr, "    %-14s %-10s attempt=%d epoch=%d node=%s span=%016x parent=%016x link=%016x\n",
					s.Name, s.Outcome, s.Attempt, s.Epoch, s.Node, s.ID, s.Parent, s.Link)
			}
		}
		fmt.Fprintln(os.Stderr, "catssim chaos: FAILED")
		os.Exit(1)
	}
	if r.StoreKeys == 0 || r.StoreShardsInUse == 0 {
		fmt.Fprintln(os.Stderr, "catssim chaos: FAILED (survivor stores empty after convergence)")
		os.Exit(1)
	}
	if walDir != "" && (r.WALAppends == 0 || r.WALSyncs == 0) {
		fmt.Fprintln(os.Stderr, "catssim chaos: FAILED (durable run produced no WAL activity)")
		os.Exit(1)
	}
}

// runCodecSwap runs the live wire-codec swap scenario
// (experiments.CodecSwap) and exits non-zero unless the history is
// linearizable with zero lost acked writes, zero codec round-trip errors,
// AND the swap machinery demonstrably engaged: swaps were applied under
// traffic and frames crossed the wire in both the binary and gob formats.
// An inert run — no swaps, or a single-format frame mix — is a failure.
// Output is purely virtual-time derived; two runs with one seed must print
// byte-identical reports, which CI diffs.
func runCodecSwap(seed int64) {
	r := experiments.CodecSwap(seed, experiments.CodecSwapConfig{})
	fmt.Printf("catssim codecswap: seed=%d nodes=%d keys=%d simulated=%v events=%d execs=%d\n",
		seed, r.Nodes, r.Keys, r.SimulatedDuration, r.DiscreteEvents, r.HandlerExecutions)
	fmt.Printf("  acked_puts=%d ok_gets=%d failed_puts=%d failed_gets=%d unresolved=%d\n",
		r.AckedPuts, r.OKGets, r.FailedPuts, r.FailedGets, r.UnresolvedOps)
	fmt.Printf("  codec_swaps=%d binary_frames=%d gob_frames=%d codec_errors=%d flaps=%d\n",
		r.CodecSwaps, r.BinaryFrames, r.GobFrames, r.CodecErrors, r.Flaps)
	fmt.Printf("  linearizable=%t lost_acked_writes=%d trace_digest=%016x\n",
		r.Linearizable, r.LostAckedWrites, r.TraceDigest)
	switch {
	case !r.Linearizable:
		fmt.Fprintf(os.Stderr, "catssim codecswap: FAILED (non-linearizable key %q)\n", r.NonLinearizableKey)
	case r.LostAckedWrites != 0:
		fmt.Fprintf(os.Stderr, "catssim codecswap: FAILED (%d lost acked writes)\n", r.LostAckedWrites)
	case r.CodecErrors != 0:
		fmt.Fprintf(os.Stderr, "catssim codecswap: FAILED (%d codec round-trip errors)\n", r.CodecErrors)
	case r.CodecSwaps == 0:
		fmt.Fprintln(os.Stderr, "catssim codecswap: FAILED (inert: no swaps applied)")
	case r.BinaryFrames == 0 || r.GobFrames == 0:
		fmt.Fprintf(os.Stderr, "catssim codecswap: FAILED (inert: frame mix binary=%d gob=%d)\n",
			r.BinaryFrames, r.GobFrames)
	default:
		return
	}
	os.Exit(1)
}

// runGray runs the gray-failure scenario (experiments.Gray) and exits
// non-zero unless the history is linearizable with zero lost acked writes
// AND the resilience machinery demonstrably engaged: hedged quorum phases
// fired (and won races) against the straggler pulses, and replica
// admission control shed the synchronized burst. An inert run — faults
// injected but no hedges or sheds — is a failure: it would mean the gate
// stopped exercising the code it exists to protect. Output is purely
// virtual-time derived; two runs with one seed must print byte-identical
// reports, which CI diffs.
func runGray(seed int64) {
	r := experiments.Gray(seed, experiments.GrayConfig{})
	fmt.Printf("catssim gray: seed=%d nodes=%d simulated=%v events=%d execs=%d\n",
		seed, r.Nodes, r.SimulatedDuration, r.DiscreteEvents, r.HandlerExecutions)
	fmt.Printf("  acked_puts=%d ok_gets=%d failed_puts=%d failed_gets=%d unresolved=%d\n",
		r.AckedPuts, r.OKGets, r.FailedPuts, r.FailedGets, r.UnresolvedOps)
	fmt.Printf("  slow_windows=%d slow_delayed=%d\n", r.SlowWindows, r.SlowDelayed)
	fmt.Printf("  hedges=%d hedge_wins=%d sheds=%d redeliveries=%d retries=%d slow_hints=%d\n",
		r.Hedges, r.HedgeWins, r.Sheds, r.Redeliveries, r.Retries, r.SlowHints)
	fmt.Printf("  linearizable=%t lost_acked_writes=%d\n", r.Linearizable, r.LostAckedWrites)
	fmt.Printf("  spans=%d timelines=%d trace_digest=%016x\n",
		r.TraceSpans, r.TraceTimelines, r.TraceDigest)
	if !r.Linearizable || r.LostAckedWrites != 0 {
		if r.NonLinearizableKey != "" {
			fmt.Fprintf(os.Stderr, "catssim gray: non-linearizable key: %s\n", r.NonLinearizableKey)
		}
		for _, k := range r.LostKeys {
			fmt.Fprintf(os.Stderr, "catssim gray: lost acked writes on key: %s\n", k)
		}
		fmt.Fprintln(os.Stderr, "catssim gray: FAILED")
		os.Exit(1)
	}
	if r.SlowWindows == 0 || r.SlowDelayed == 0 {
		fmt.Fprintln(os.Stderr, "catssim gray: FAILED (no gray faults injected — the gate proved nothing)")
		os.Exit(1)
	}
	if r.Hedges == 0 || r.Sheds == 0 {
		fmt.Fprintln(os.Stderr, "catssim gray: FAILED (resilience machinery never engaged: hedges or sheds are zero)")
		os.Exit(1)
	}
}

// runRecovery drives the durability gate's two phases (see
// internal/experiments/recovery.go). Phase "crash" is expected to DIE —
// the scheduled whole-cluster SIGKILL exits with code 137, which the CI
// recovery job asserts; reaching the end of the schedule alive is the
// failure case. Phase "recover" rebuilds a cluster from nothing but the
// WAL directory, audits it, and prints a report derived purely from
// virtual time and on-disk state — byte-identical across runs of one
// seed, diffed by CI.
func runRecovery(seed int64, phase, walDir string) {
	if walDir == "" {
		fmt.Fprintln(os.Stderr, "catssim recovery: -wal-dir is required")
		os.Exit(2)
	}
	cfg := experiments.RecoveryConfig{}
	switch phase {
	case "crash":
		fmt.Printf("catssim recovery: seed=%d phase=crash wal_dir_set=true\n", seed)
		err := experiments.RecoveryCrash(seed, cfg, walDir)
		// Returning at all means the SIGKILL never fired.
		fmt.Fprintln(os.Stderr, "catssim recovery: FAILED:", err)
		os.Exit(1)
	case "recover":
		r, err := experiments.RecoveryRecover(seed, cfg, walDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "catssim recovery: FAILED:", err)
			os.Exit(1)
		}
		fmt.Printf("catssim recovery: seed=%d phase=recover nodes=%d keys=%d simulated=%v events=%d execs=%d\n",
			seed, r.Nodes, r.Keys, r.SimulatedDuration, r.DiscreteEvents, r.HandlerExecutions)
		fmt.Printf("  phase1: acked_puts=%d failed_puts=%d ok_gets=%d unresolved=%d\n",
			r.AckedPuts, r.FailedPuts, r.OKGets, r.UnresolvedOps)
		fmt.Printf("  recovered: snapshots_loaded=%d snapshot_entries=%d wal_replayed=%d torn_tails=%d recovered_keys=%d\n",
			r.SnapshotsLoaded, r.SnapshotEntries, r.WALReplayed, r.TornTails, r.RecoveredKeys)
		fmt.Printf("  converge: handoff_keys=%d handoff_transfers=%d max_epoch=%d audit_ok=%d audit_failed=%d\n",
			r.HandoffKeys, r.HandoffTransfers, r.MaxEpoch, r.AuditOKGets, r.AuditFailed)
		fmt.Printf("  linearizable=%t lost_acked_writes=%d\n", r.Linearizable, r.LostAckedWrites)
		if !r.Linearizable || r.LostAckedWrites != 0 {
			if r.NonLinearizableKey != "" {
				fmt.Fprintf(os.Stderr, "catssim recovery: non-linearizable key: %s\n", r.NonLinearizableKey)
			}
			for _, k := range r.LostKeys {
				fmt.Fprintf(os.Stderr, "catssim recovery: lost acked writes on key: %s\n", k)
			}
			fmt.Fprintln(os.Stderr, "catssim recovery: FAILED")
			os.Exit(1)
		}
		if r.RecoveredKeys == 0 || r.WALReplayed+r.SnapshotEntries == 0 {
			fmt.Fprintln(os.Stderr, "catssim recovery: FAILED (nothing recovered from disk — the scenario proved nothing)")
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "catssim recovery: unknown -phase %q (want crash|recover)\n", phase)
		os.Exit(2)
	}
}

// buildScenario composes the paper's boot → churn ∥ lookups scenario with
// an additional put/get process. Drawn 16-bit identifiers are scaled onto
// the 64-bit ring.
func buildScenario(boot, churn, lookups, ops int) *scenario.Scenario {
	catsJoin := func(id uint64) core.Event { return cats.JoinNode{Key: ident.Key(id << 48)} }
	catsFail := func(id uint64) core.Event { return cats.FailNode{Key: ident.Key(id << 48)} }
	catsLookup := func(node, key uint64) core.Event {
		return cats.OpLookup{NodeKey: ident.Key(node << 48), Target: ident.Key(key << 48)}
	}
	catsPut := func(node, key uint64) core.Event {
		return cats.OpPut{NodeKey: ident.Key(node << 48), Key: fmt.Sprintf("key-%d", key), Value: []byte("value")}
	}
	catsGet := func(node, key uint64) core.Event {
		return cats.OpGet{NodeKey: ident.Key(node << 48), Key: fmt.Sprintf("key-%d", key)}
	}

	bootP := scenario.NewProcess("boot").
		EventInterArrivalTime(scenario.ExponentialDuration(500 * time.Millisecond))
	scenario.Raise1(bootP, boot, catsJoin, scenario.UniformBits(16))

	churnP := scenario.NewProcess("churn").
		EventInterArrivalTime(scenario.ExponentialDuration(500 * time.Millisecond))
	scenario.Raise1(churnP, churn/2, catsJoin, scenario.UniformBits(16))
	scenario.Raise1(churnP, churn/2, catsFail, scenario.UniformBits(16))

	lookupsP := scenario.NewProcess("lookups").
		EventInterArrivalTime(scenario.NormalDuration(50*time.Millisecond, 10*time.Millisecond))
	scenario.Raise2(lookupsP, lookups, catsLookup, scenario.UniformBits(16), scenario.UniformBits(14))

	opsP := scenario.NewProcess("ops").
		EventInterArrivalTime(scenario.NormalDuration(100*time.Millisecond, 20*time.Millisecond))
	scenario.Raise2(opsP, ops/2, catsPut, scenario.UniformBits(16), scenario.UniformBits(10))
	scenario.Raise2(opsP, ops/2, catsGet, scenario.UniformBits(16), scenario.UniformBits(10))

	sc := scenario.New().
		Start(bootP).
		StartAfterTerminationOf(churnP, 2*time.Second, bootP).
		StartAfterStartOf(lookupsP, 3*time.Second, churnP).
		StartAfterStartOf(opsP, 3*time.Second, churnP)
	sc.TerminateAfterTerminationOf(time.Second, lookupsP)
	return sc
}

func runSimulated(seed int64, sched scenario.Schedule, nodeCfg cats.NodeConfig, tail time.Duration, trace bool) {
	var digest *traceDigest
	simOpts := []simulation.SimOption{}
	if trace {
		digest = newTraceDigest()
		simOpts = append(simOpts, simulation.WithTraceSink(digest))
	}
	sim := simulation.New(seed, simOpts...)
	emu := simulation.NewNetworkEmulator(sim,
		simulation.WithLatency(simulation.UniformLatency(time.Millisecond, 10*time.Millisecond)))
	host := cats.NewSimulator(cats.SimEnv{Sim: sim, Emu: emu}, nodeCfg)
	var exp *core.Port
	sim.Runtime().MustBootstrap("CatsSimulationMain", core.SetupFunc(func(ctx *core.Ctx) {
		c := ctx.Create("simulator", host)
		exp = c.Provided(cats.ExperimentPortType)
	}))
	sim.Run(0)
	end := scenario.ExecuteSimulated(sim, sched, exp)
	stats := sim.Run(end + tail)
	report(host.Metrics(), host.AliveCount())
	fmt.Printf("  %v\n", stats)
	if digest != nil {
		fmt.Printf("  trace: records=%d digest=%016x\n", digest.n, digest.h.Sum64())
	}
}

// traceDigest is a core.TraceSink that folds every handler execution —
// virtual timestamp, component path, event type, handler name — into one
// FNV-1a hash. Two simulation runs are behaviorally identical iff their
// record counts and digests match, which is what the CI determinism job
// diffs; a full trace dump would be millions of lines.
type traceDigest struct {
	n uint64
	h hash.Hash64
}

func newTraceDigest() *traceDigest { return &traceDigest{h: fnv.New64a()} }

func (t *traceDigest) Record(r core.TraceRecord) {
	t.n++
	comp := ""
	if r.Component != nil {
		comp = r.Component.Path()
	}
	fmt.Fprintf(t.h, "%d|%s|%v|%s|%d\n", r.At.UnixNano(), comp, r.Event, r.Handler, r.Handlers)
}

func runLocal(sched scenario.Schedule, nodeCfg cats.NodeConfig, tail time.Duration) {
	registry := network.NewLoopbackRegistry()
	host := cats.NewSimulator(cats.LoopbackEnv{Registry: registry}, nodeCfg)
	rt := core.New()
	defer rt.Shutdown()
	var exp *core.Port
	rt.MustBootstrap("CatsLocalExecutionMain", core.SetupFunc(func(ctx *core.Ctx) {
		c := ctx.Create("simulator", host)
		exp = c.Provided(cats.ExperimentPortType)
	}))
	rt.WaitQuiescence(5 * time.Second)

	start := time.Now()
	done, stop := scenario.ExecuteRealTime(sched, exp)
	defer stop()
	<-done
	time.Sleep(tail)
	rt.WaitQuiescence(10 * time.Second)
	fmt.Printf("catssim: local execution took %v wall time\n", time.Since(start).Round(time.Millisecond))
	report(host.Metrics(), host.AliveCount())
}

func report(m cats.Metrics, alive int) {
	fmt.Printf("  joins=%d fails=%d alive=%d skipped=%d\n", m.Joins, m.Fails, alive, m.Skipped)
	fmt.Printf("  lookups=%d (empty=%d) puts=%d ok / %d failed, gets=%d ok / %d failed\n",
		m.Lookups, m.LookupsEmpty, m.PutsOK, m.PutsFailed, m.GetsOK, m.GetsFailed)
	if n, mean, min, max := m.LatencyStats(); n > 0 {
		fmt.Printf("  op latency: n=%d mean=%v min=%v max=%v\n", n, mean, min, max)
	}
}
