// monitord runs the standalone monitoring server (the paper's CATS
// MonitorServerMain): it aggregates the periodic status reports sent by
// every node's monitoring client and presents the global view of the
// system on a web page. /alerts serves the firing alert rules (queue-drop
// growth, fault spikes, reconnect storms) as plain text.
//
//	monitord -addr 10.0.0.9:7200 -web 10.0.0.9:8090
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/network"
	"repro/internal/web"
)

func main() {
	var (
		addrS   = flag.String("addr", "127.0.0.1:7200", "report listen address (host:port)")
		webS    = flag.String("web", "127.0.0.1:8090", "web UI listen address")
		pprofOn = flag.Bool("pprof", false, "expose /debug/pprof/ on the web listener")
	)
	flag.Parse()

	addr, err := network.ParseAddress(*addrS)
	if err != nil {
		fmt.Fprintln(os.Stderr, "monitord:", err)
		os.Exit(1)
	}

	rt := core.New()
	rt.MustBootstrap("MonitorServerMain", core.SetupFunc(func(ctx *core.Ctx) {
		tr := ctx.Create("net", network.NewTCP(addr))
		srv := ctx.Create("server", monitor.NewServer(monitor.ServerConfig{Self: addr}))
		ctx.Connect(srv.Required(network.PortType), tr.Provided(network.PortType))
		bridge := ctx.Create("web", web.NewBridge(web.BridgeConfig{Listen: *webS, EnablePprof: *pprofOn}))
		ctx.Connect(srv.Provided(web.PortType), bridge.Required(web.PortType))
	}))
	fmt.Printf("monitord: reports on %s, global view at http://%s/, alerts at http://%s/alerts, federated metrics at http://%s/federate, trace timelines at http://%s/traces\n",
		addr, *webS, *webS, *webS, *webS)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case <-sig:
	case <-rt.Halted():
		fmt.Println("monitord: runtime halted:", rt.HaltErr())
	}
	rt.Shutdown()
}
