// catsctl is a small operator CLI for a running CATS deployment: it talks
// to a node's embedded web interface (catsnode -web) to get and put keys
// and to inspect node status, and to the monitoring server's web interface
// for the global view.
//
//	catsctl -node 127.0.0.1:8081 put city montreal
//	catsctl -node 127.0.0.1:8082 get city
//	catsctl -node 127.0.0.1:8081 status
//	catsctl -node 127.0.0.1:8090 view        # monitor server global view
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"time"
)

func main() {
	var (
		node    = flag.String("node", "127.0.0.1:8080", "web address of the node (or monitor server for 'view')")
		timeout = flag.Duration("timeout", 10*time.Second, "request timeout")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: catsctl [-node host:port] <get KEY | put KEY VALUE | status | view>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	client := &http.Client{Timeout: *timeout}
	var reqURL string
	switch args[0] {
	case "get":
		if len(args) != 2 {
			fatal("get requires exactly one KEY")
		}
		reqURL = fmt.Sprintf("http://%s/get?key=%s", *node, url.QueryEscape(args[1]))
	case "put":
		if len(args) != 3 {
			fatal("put requires KEY and VALUE")
		}
		reqURL = fmt.Sprintf("http://%s/put?key=%s&value=%s",
			*node, url.QueryEscape(args[1]), url.QueryEscape(args[2]))
	case "status":
		reqURL = fmt.Sprintf("http://%s/status", *node)
	case "view":
		reqURL = fmt.Sprintf("http://%s/", *node)
	default:
		fatal(fmt.Sprintf("unknown command %q", args[0]))
	}

	resp, err := client.Get(reqURL)
	if err != nil {
		fatal(err.Error())
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fatal(err.Error())
	}
	fmt.Println(string(body))
	if resp.StatusCode != http.StatusOK {
		os.Exit(1)
	}
}

func fatal(msg string) {
	fmt.Fprintln(os.Stderr, "catsctl:", msg)
	os.Exit(1)
}
