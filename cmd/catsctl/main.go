// catsctl is a small operator CLI for a running CATS deployment: it talks
// to a node's embedded web interface (catsnode -web) to get and put keys
// and to inspect node status, and to the monitoring server's web interface
// for the global view and assembled trace timelines.
//
//	catsctl -node 127.0.0.1:8081 put city montreal
//	catsctl -node 127.0.0.1:8082 get city
//	catsctl -node 127.0.0.1:8081 status
//	catsctl -node 127.0.0.1:8090 view                  # monitor server global view
//	catsctl -node 127.0.0.1:8090 trace 00a1b2c3d4e5f607  # one op's cross-node timeline
//	catsctl -node 127.0.0.1:8090 traces -slowest 5     # slowest assembled timelines
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/monitor"
	"repro/internal/tracing"
)

func main() {
	var (
		node    = flag.String("node", "127.0.0.1:8080", "web address of the node (or monitor server for 'view'/'trace'/'traces')")
		timeout = flag.Duration("timeout", 10*time.Second, "request timeout")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: catsctl [-node host:port] <get KEY | put KEY VALUE | status | view | trace ID | traces [-slowest N] [-phase NAME] [-restarts N]>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	client := &http.Client{Timeout: *timeout}
	var reqURL string
	switch args[0] {
	case "get":
		if len(args) != 2 {
			fatal("get requires exactly one KEY")
		}
		reqURL = fmt.Sprintf("http://%s/get?key=%s", *node, url.QueryEscape(args[1]))
	case "put":
		if len(args) != 3 {
			fatal("put requires KEY and VALUE")
		}
		reqURL = fmt.Sprintf("http://%s/put?key=%s&value=%s",
			*node, url.QueryEscape(args[1]), url.QueryEscape(args[2]))
	case "status":
		reqURL = fmt.Sprintf("http://%s/status", *node)
	case "view":
		reqURL = fmt.Sprintf("http://%s/", *node)
	case "trace":
		if len(args) != 2 {
			fatal("trace requires exactly one trace ID (16 hex digits)")
		}
		if _, err := tracing.ParseID(args[1]); err != nil {
			fatal(err.Error())
		}
		runTraces(client, *node, url.Values{"id": {args[1]}}, true)
		return
	case "traces":
		fs := flag.NewFlagSet("traces", flag.ExitOnError)
		slowest := fs.Int("slowest", 10, "show the N slowest timelines")
		phase := fs.String("phase", "", "only timelines containing a span with this name")
		restarts := fs.Int("restarts", 0, "only timelines with at least N epoch restarts")
		full := fs.Bool("full", false, "render every span ladder, not just the summary table")
		_ = fs.Parse(args[1:])
		q := url.Values{"slowest": {fmt.Sprint(*slowest)}}
		if *phase != "" {
			q.Set("phase", *phase)
		}
		if *restarts > 0 {
			q.Set("restarts", fmt.Sprint(*restarts))
		}
		runTraces(client, *node, q, *full)
		return
	default:
		fatal(fmt.Sprintf("unknown command %q", args[0]))
	}

	resp, err := client.Get(reqURL)
	if err != nil {
		fatal(err.Error())
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fatal(err.Error())
	}
	fmt.Println(string(body))
	if resp.StatusCode != http.StatusOK {
		os.Exit(1)
	}
}

// runTraces fetches assembled timelines from the monitor's /traces
// endpoint and renders them.
func runTraces(client *http.Client, node string, q url.Values, full bool) {
	resp, err := client.Get(fmt.Sprintf("http://%s/traces?%s", node, q.Encode()))
	if err != nil {
		fatal(err.Error())
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fatal(err.Error())
	}
	if resp.StatusCode != http.StatusOK {
		fatal(strings.TrimSpace(string(body)))
	}
	var reply monitor.TracesReply
	if err := json.Unmarshal(body, &reply); err != nil {
		fatal("bad /traces reply: " + err.Error())
	}

	names := make([]string, 0, len(reply.ScrapeErrors))
	for n := range reply.ScrapeErrors {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(os.Stderr, "catsctl: node %s not scraped: %s\n", n, reply.ScrapeErrors[n])
	}
	if len(reply.Result) == 0 {
		fmt.Println("no matching timelines")
		return
	}
	if !full {
		fmt.Printf("%-16s  %-4s %-12s %-8s %9s  %8s  %s\n",
			"TRACE", "OP", "KEY", "OUTCOME", "DURATION", "RESTARTS", "NODES")
		for _, tl := range reply.Result {
			fmt.Printf("%-16s  %-4s %-12s %-8s %9s  %8d  %s\n",
				tl.TraceHex, tl.Name, tl.Key, tl.Outcome,
				tl.Duration.Round(time.Microsecond), tl.Restarts, strings.Join(tl.Nodes, ","))
		}
		fmt.Println("\nrun `catsctl trace <TRACE>` for a span ladder")
		return
	}
	for i, tl := range reply.Result {
		if i > 0 {
			fmt.Println()
		}
		printTimeline(os.Stdout, tl)
	}
}

// printTimeline renders one timeline as an indented span ladder with a
// proportional time bar:
//
//	trace 00a1… put key=city ok 12.3ms restarts=1 nodes=[a,b]
//	  put              ok        0s  12.3ms |########################|
//	    attempt        restart   0s   4.0ms |########                | ↩
func printTimeline(w io.Writer, tl tracing.Timeline) {
	fmt.Fprintf(w, "trace %s  %s", tl.TraceHex, tl.Name)
	if tl.Key != "" {
		fmt.Fprintf(w, " key=%s", tl.Key)
	}
	fmt.Fprintf(w, "  %s  %s  restarts=%d  nodes=[%s]\n",
		tl.Outcome, tl.Duration.Round(time.Microsecond), tl.Restarts, strings.Join(tl.Nodes, ","))

	// Depth by parent links; spans referencing a parent outside the
	// snapshot (ring wrap) indent one level.
	depth := map[uint64]int{}
	spanDepth := func(s tracing.Span) int {
		if s.Parent == 0 {
			return 0
		}
		if d, ok := depth[s.Parent]; ok {
			return d + 1
		}
		return 1
	}
	const barWidth = 24
	total := tl.Duration
	if total <= 0 {
		total = 1
	}
	for _, s := range tl.Spans {
		d := spanDepth(s)
		depth[s.ID] = d
		off := s.Start.Sub(tl.Start)
		dur := s.Duration()
		lead := int(int64(barWidth) * int64(off) / int64(total))
		fill := int(int64(barWidth) * int64(dur) / int64(total))
		if fill < 1 {
			fill = 1
		}
		if lead+fill > barWidth {
			fill = barWidth - lead
		}
		bar := strings.Repeat(" ", lead) + strings.Repeat("#", fill) +
			strings.Repeat(" ", barWidth-lead-fill)
		label := strings.Repeat("  ", d+1) + s.Name
		if s.Attempt > 0 {
			label += fmt.Sprintf("#%d", s.Attempt)
		}
		fmt.Fprintf(w, "%-26s %-10s %8s %9s |%s| %s",
			label, s.Outcome, off.Round(time.Microsecond), dur.Round(time.Microsecond), bar, s.Node)
		if s.Link != 0 {
			fmt.Fprintf(w, "  ↩ restarts %016x", s.Link)
		}
		fmt.Fprintln(w)
	}
}

func fatal(msg string) {
	fmt.Fprintln(os.Stderr, "catsctl:", msg)
	os.Exit(1)
}
