// catsbench regenerates the paper's evaluation artifacts (DESIGN.md §3)
// and prints them as paper-style tables:
//
//	catsbench -exp table1    # Table 1: simulation time compression vs peers
//	catsbench -exp latency   # C1: end-to-end op latency (sub-ms claim)
//	catsbench -exp scaling   # C2: read throughput vs cluster size
//	catsbench -exp stealing  # C3: work-stealing batch ablation
//	catsbench -exp all
//
// Absolute numbers depend on the machine; the shapes (monotone
// compression decay, sub-millisecond latency, near-linear scaling, batch
// advantage) are the reproduction targets. Use -quick for a fast pass.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment: table1 | latency | scaling | stealing | all")
		seed  = flag.Int64("seed", 2012, "random seed")
		quick = flag.Bool("quick", false, "smaller sizes for a fast pass")
	)
	flag.Parse()

	run := map[string]bool{}
	if *exp == "all" {
		run["table1"], run["latency"], run["scaling"], run["stealing"] = true, true, true, true
	} else {
		run[*exp] = true
	}
	any := false
	if run["table1"] {
		table1(*seed, *quick)
		any = true
	}
	if run["latency"] {
		latency(*quick)
		any = true
	}
	if run["scaling"] {
		scaling(*seed, *quick)
		any = true
	}
	if run["stealing"] {
		stealing(*quick)
		any = true
	}
	if !any {
		fmt.Fprintf(os.Stderr, "catsbench: unknown experiment %q\n", *exp)
		os.Exit(1)
	}
}

func table1(seed int64, quick bool) {
	peerCounts := []int{64, 128, 256, 512, 1024}
	simTime := 60 * time.Second
	if quick {
		peerCounts = []int{64, 128, 256}
		simTime = 20 * time.Second
	}
	fmt.Println("== Table 1: time compression when simulating the system ==")
	fmt.Printf("   (paper: 4275 s simulated; 64 peers → 475x ... 8192 peers → 2.01x, ~1x at 16384)\n")
	fmt.Printf("   (here: %v simulated per row, steady-state lookup workload)\n\n", simTime)
	fmt.Printf("%8s  %14s  %14s  %12s  %12s\n", "Peers", "Simulated", "Wall", "Compression", "Events")
	for _, n := range peerCounts {
		r := experiments.Table1(seed, n, simTime)
		fmt.Printf("%8d  %14v  %14v  %11.2fx  %12d\n",
			r.Peers, r.SimulatedDuration.Round(time.Millisecond),
			r.WallDuration.Round(time.Millisecond), r.Compression, r.DiscreteEvents)
	}
	fmt.Println()
}

func latency(quick bool) {
	ops := 2000
	if quick {
		ops = 400
	}
	fmt.Println("== C1: end-to-end operation latency, in-process cluster ==")
	fmt.Println("   (paper: sub-millisecond get/put on LAN, replication degree 5, incl.")
	fmt.Println("    2 quorum round-trips, 4x serialization, 4x deserialization)")
	fmt.Println()
	fmt.Printf("%6s %5s %13s %10s  %10s  %10s  %10s  %10s  %8s\n",
		"Nodes", "Repl", "Codec", "ValueSize", "Mean", "P50", "P99", "Max", "<1ms")
	for _, r := range []experiments.LatencyResult{
		experiments.Latency(8, 3, 1024, ops, experiments.CodecStream),
		experiments.Latency(8, 5, 1024, ops, experiments.CodecStream),
		experiments.Latency(8, 5, 1024, ops, experiments.CodecPerMessage),
		experiments.Latency(8, 5, 1024, ops, experiments.CodecPerMessageZlib),
	} {
		fmt.Printf("%6d %5d %13s %10d  %10v  %10v  %10v  %10v  %7.1f%%\n",
			r.Nodes, r.Replication, r.Codec, r.ValueSize,
			r.Mean.Round(time.Microsecond), r.P50.Round(time.Microsecond),
			r.P99.Round(time.Microsecond), r.Max.Round(time.Microsecond),
			100*r.SubMilli)
	}
	fmt.Println()
}

func scaling(seed int64, quick bool) {
	sizes := []int{8, 16, 32, 48, 64, 96}
	opsPerNode := 400
	if quick {
		sizes = []int{8, 16, 32}
		opsPerNode = 150
	}
	fmt.Println("== C2: read throughput vs cluster size (simulated, closed loop) ==")
	fmt.Println("   (paper: read-intensive 1 KiB workload scaled to 96 machines at ~100,000 reads/s;")
	fmt.Println("    the reproduction target is the near-linear shape, not the absolute rate)")
	fmt.Println()
	fmt.Printf("%8s  %10s  %8s  %16s  %14s  %12s\n",
		"Nodes", "Ops", "Failed", "Aggregate ops/s", "Per-node ops/s", "Mean latency")
	base := 0.0
	for _, n := range sizes {
		r := experiments.Scaling(seed, n, 8, opsPerNode)
		scaleNote := ""
		if base == 0 {
			base = r.ThroughputPS / float64(r.Nodes)
		} else {
			scaleNote = fmt.Sprintf("  (%.2fx linear)", r.PerNodePS/base)
		}
		fmt.Printf("%8d  %10d  %8d  %16.0f  %14.0f  %12v%s\n",
			r.Nodes, r.Ops, r.Failed, r.ThroughputPS, r.PerNodePS,
			r.MeanLatency.Round(100*time.Microsecond), scaleNote)
	}
	fmt.Println()
}

func stealing(quick bool) {
	components, events := 512, 2000
	if quick {
		components, events = 256, 500
	}
	// At least 4 workers so the stealing machinery engages even on hosts
	// with few cores (on a single-core host this measures the mechanism's
	// behaviour and overhead, not parallel speedup).
	workers := runtime.NumCPU()
	if workers < 4 {
		workers = 4
	}
	fmt.Println("== C3: work-stealing batch ablation ==")
	fmt.Println("   (paper: stealing a batch of half the victim's ready components shows a")
	fmt.Println("    considerable improvement over stealing small numbers; all readiness is")
	fmt.Println("    placed on one worker queue to maximize stealing pressure)")
	fmt.Println()
	fmt.Printf("%8s  %6s  %10s  %12s  %12s  %10s  %10s\n",
		"Workers", "Batch", "Events", "Wall", "Events/ms", "Steals", "Stolen")
	for _, batchHalf := range []bool{false, true} {
		r := experiments.Stealing(workers, components, events, batchHalf)
		fmt.Printf("%8d  %6s  %10d  %12v  %12.0f  %10d  %10d\n",
			r.Workers, r.Batch, r.Events, r.Wall.Round(time.Millisecond),
			r.EventsPerMS, r.Steals, r.Stolen)
	}
	fmt.Println()
}
