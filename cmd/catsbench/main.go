// catsbench regenerates the paper's evaluation artifacts (DESIGN.md §3)
// and prints them as paper-style tables:
//
//	catsbench -exp table1    # Table 1: simulation time compression vs peers
//	catsbench -exp latency   # C1: end-to-end op latency (sub-ms claim)
//	catsbench -exp scaling   # C2: read throughput vs cluster size
//	catsbench -exp stealing  # C3: work-stealing batch ablation
//	catsbench -exp quorum    # C4: coalesced vs uncoalesced quorum A/B
//	catsbench -exp million   # C5: 1M-key sharded-store open-loop profile
//	catsbench -exp wal       # C7: durability (WAL sync policy) A/B
//	catsbench -exp hedge     # C8: hedged quorum phases vs a gray replica A/B
//	catsbench -exp codec     # C9: wire codec A/B (gob+zlib vs binary)
//	catsbench -exp all
//
// -json-dir writes a machine-readable BENCH_<name>.json per experiment so
// the perf trajectory is tracked across changes; -gate compares the C5
// profile against a checked-in baseline and exits non-zero on regression.
//
// Absolute numbers depend on the machine; the shapes (monotone
// compression decay, sub-millisecond latency, near-linear scaling, batch
// advantage) are the reproduction targets. Use -quick for a fast pass.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment: table1 | latency | scaling | stealing | quorum | trace | million | wal | hedge | codec | all")
		seed      = flag.Int64("seed", 2012, "random seed")
		quick     = flag.Bool("quick", false, "smaller sizes for a fast pass")
		jsonDir   = flag.String("json-dir", "", "directory to write BENCH_<name>.json results into")
		gate      = flag.String("gate", "", "baseline BENCH_million.json to gate the million profile against (>10% ops/s regression fails)")
		walGate   = flag.String("wal-gate", "", "baseline BENCH_wal.json to gate the durability-on (sync=always) throughput against (>10% regression fails)")
		hedgeGate = flag.String("hedge-gate", "", "baseline BENCH_hedge.json to gate the hedging tail-latency improvement against (inert hedging or lost improvement fails)")
		codecGate = flag.String("codec-gate", "", "baseline BENCH_codec.json to gate the binary wire codec against (inert binary arm, lost gob+zlib advantage, or >10% loopback regression fails)")
	)
	flag.Parse()

	run := map[string]bool{}
	if *exp == "all" {
		run["table1"], run["latency"], run["scaling"], run["stealing"] = true, true, true, true
		run["quorum"], run["trace"], run["million"], run["wal"] = true, true, true, true
		run["hedge"], run["codec"] = true, true
	} else {
		run[*exp] = true
	}
	any := false
	if run["table1"] {
		table1(*seed, *quick)
		any = true
	}
	if run["latency"] {
		latency(*quick)
		any = true
	}
	if run["scaling"] {
		scaling(*seed, *quick)
		any = true
	}
	if run["stealing"] {
		stealing(*quick)
		any = true
	}
	if run["quorum"] {
		quorum(*quick, *jsonDir)
		any = true
	}
	if run["trace"] {
		traceOverhead(*quick, *jsonDir)
		any = true
	}
	if run["million"] {
		million(*quick, *jsonDir, *gate)
		any = true
	}
	if run["wal"] {
		wal(*quick, *jsonDir, *walGate)
		any = true
	}
	if run["hedge"] {
		hedge(*seed, *jsonDir, *hedgeGate)
		any = true
	}
	if run["codec"] {
		codecBench(*quick, *jsonDir, *codecGate)
		any = true
	}
	if !any {
		fmt.Fprintf(os.Stderr, "catsbench: unknown experiment %q\n", *exp)
		os.Exit(1)
	}
}

func table1(seed int64, quick bool) {
	peerCounts := []int{64, 128, 256, 512, 1024}
	simTime := 60 * time.Second
	if quick {
		peerCounts = []int{64, 128, 256}
		simTime = 20 * time.Second
	}
	fmt.Println("== Table 1: time compression when simulating the system ==")
	fmt.Printf("   (paper: 4275 s simulated; 64 peers → 475x ... 8192 peers → 2.01x, ~1x at 16384)\n")
	fmt.Printf("   (here: %v simulated per row, steady-state lookup workload)\n\n", simTime)
	fmt.Printf("%8s  %14s  %14s  %12s  %12s\n", "Peers", "Simulated", "Wall", "Compression", "Events")
	for _, n := range peerCounts {
		r := experiments.Table1(seed, n, simTime)
		fmt.Printf("%8d  %14v  %14v  %11.2fx  %12d\n",
			r.Peers, r.SimulatedDuration.Round(time.Millisecond),
			r.WallDuration.Round(time.Millisecond), r.Compression, r.DiscreteEvents)
	}
	fmt.Println()
}

func latency(quick bool) {
	ops := 2000
	if quick {
		ops = 400
	}
	fmt.Println("== C1: end-to-end operation latency, in-process cluster ==")
	fmt.Println("   (paper: sub-millisecond get/put on LAN, replication degree 5, incl.")
	fmt.Println("    2 quorum round-trips, 4x serialization, 4x deserialization)")
	fmt.Println()
	fmt.Printf("%6s %5s %13s %10s  %10s  %10s  %10s  %10s  %8s\n",
		"Nodes", "Repl", "Codec", "ValueSize", "Mean", "P50", "P99", "Max", "<1ms")
	for _, r := range []experiments.LatencyResult{
		experiments.Latency(8, 3, 1024, ops, experiments.CodecStream),
		experiments.Latency(8, 5, 1024, ops, experiments.CodecStream),
		experiments.Latency(8, 5, 1024, ops, experiments.CodecPerMessage),
		experiments.Latency(8, 5, 1024, ops, experiments.CodecPerMessageZlib),
	} {
		fmt.Printf("%6d %5d %13s %10d  %10v  %10v  %10v  %10v  %7.1f%%\n",
			r.Nodes, r.Replication, r.Codec, r.ValueSize,
			r.Mean.Round(time.Microsecond), r.P50.Round(time.Microsecond),
			r.P99.Round(time.Microsecond), r.Max.Round(time.Microsecond),
			100*r.SubMilli)
	}
	fmt.Println()
}

func scaling(seed int64, quick bool) {
	sizes := []int{8, 16, 32, 48, 64, 96}
	opsPerNode := 400
	if quick {
		sizes = []int{8, 16, 32}
		opsPerNode = 150
	}
	fmt.Println("== C2: read throughput vs cluster size (simulated, closed loop) ==")
	fmt.Println("   (paper: read-intensive 1 KiB workload scaled to 96 machines at ~100,000 reads/s;")
	fmt.Println("    the reproduction target is the near-linear shape, not the absolute rate)")
	fmt.Println()
	fmt.Printf("%8s  %10s  %8s  %16s  %14s  %12s\n",
		"Nodes", "Ops", "Failed", "Aggregate ops/s", "Per-node ops/s", "Mean latency")
	base := 0.0
	for _, n := range sizes {
		r := experiments.Scaling(seed, n, 8, opsPerNode)
		scaleNote := ""
		if base == 0 {
			base = r.ThroughputPS / float64(r.Nodes)
		} else {
			scaleNote = fmt.Sprintf("  (%.2fx linear)", r.PerNodePS/base)
		}
		fmt.Printf("%8d  %10d  %8d  %16.0f  %14.0f  %12v%s\n",
			r.Nodes, r.Ops, r.Failed, r.ThroughputPS, r.PerNodePS,
			r.MeanLatency.Round(100*time.Microsecond), scaleNote)
	}
	fmt.Println()
}

func stealing(quick bool) {
	components, events := 512, 2000
	if quick {
		components, events = 256, 500
	}
	// At least 4 workers so the stealing machinery engages even on hosts
	// with few cores (on a single-core host this measures the mechanism's
	// behaviour and overhead, not parallel speedup).
	workers := runtime.NumCPU()
	if workers < 4 {
		workers = 4
	}
	fmt.Println("== C3: work-stealing batch ablation ==")
	fmt.Println("   (paper: stealing a batch of half the victim's ready components shows a")
	fmt.Println("    considerable improvement over stealing small numbers; all readiness is")
	fmt.Println("    placed on one worker queue to maximize stealing pressure)")
	fmt.Println()
	fmt.Printf("%8s  %6s  %10s  %12s  %12s  %10s  %10s\n",
		"Workers", "Batch", "Events", "Wall", "Events/ms", "Steals", "Stolen")
	for _, batchHalf := range []bool{false, true} {
		r := experiments.Stealing(workers, components, events, batchHalf)
		fmt.Printf("%8d  %6s  %10d  %12v  %12.0f  %10d  %10d\n",
			r.Workers, r.Batch, r.Events, r.Wall.Round(time.Millisecond),
			r.EventsPerMS, r.Steals, r.Stolen)
	}
	fmt.Println()
}

// benchJSON is the machine-readable result record written per experiment:
// one flat object so downstream tooling can diff runs without schema
// knowledge.
type benchJSON struct {
	Name        string  `json:"name"`
	OpsPS       float64 `json:"ops_ps"`
	P50Micros   float64 `json:"p50_us"`
	P99Micros   float64 `json:"p99_us"`
	AllocsPerOp float64 `json:"allocs_per_op"`

	// Quorum A/B extras.
	LegacyOpsPS  float64 `json:"legacy_ops_ps,omitempty"`
	Improvement  float64 `json:"improvement,omitempty"`
	LegacyP50Mic float64 `json:"legacy_p50_us,omitempty"`
	LegacyP99Mic float64 `json:"legacy_p99_us,omitempty"`
	Batches      uint64  `json:"batches,omitempty"`
	BatchedOps   uint64  `json:"batched_ops,omitempty"`

	// Hedge A/B extras (virtual-time, deterministic per seed).
	Hedges    uint64 `json:"hedges,omitempty"`
	HedgeWins uint64 `json:"hedge_wins,omitempty"`

	// Million-key extras.
	Keys           int     `json:"keys,omitempty"`
	Failed         uint64  `json:"failed,omitempty"`
	HeapBeforeMB   float64 `json:"heap_before_mb,omitempty"`
	HeapAfterMB    float64 `json:"heap_after_mb,omitempty"`
	NonEmptyShards int     `json:"non_empty_shards,omitempty"`
	MinShardKeys   int     `json:"min_shard_keys,omitempty"`
	MaxShardKeys   int     `json:"max_shard_keys,omitempty"`
}

// writeJSON emits BENCH_<name>.json into dir (no-op when dir is empty).
func writeJSON(dir string, rec benchJSON) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "catsbench: json dir: %v\n", err)
		os.Exit(1)
	}
	path := filepath.Join(dir, "BENCH_"+rec.Name+".json")
	b, _ := json.MarshalIndent(rec, "", "  ")
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "catsbench: write %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("   wrote %s\n\n", path)
}

func quorum(quick bool, jsonDir string) {
	clients, ops, rounds := 48, 4000, 3
	if quick {
		clients, ops, rounds = 32, 1200, 2
	}
	fmt.Println("== C4: coalesced vs uncoalesced ABD quorum rounds (A/B) ==")
	fmt.Println("   (3 nodes at replication degree 3: every key hits the same replica set;")
	fmt.Println("    closed-loop clients pile concurrent ops onto each coordinator, and")
	fmt.Println("    coalescing carries same-destination phases in one frame per peer;")
	fmt.Println("    rounds interleave A/B to cancel machine drift)")
	fmt.Println()
	r := experiments.QuorumAB(3, clients, ops, rounds)
	fmt.Printf("%12s  %12s  %10s  %10s  %10s\n", "Variant", "ops/s", "P50", "P99", "Frames")
	fmt.Printf("%12s  %12.0f  %10v  %10v  %10s\n", "uncoalesced", r.LegacyOpsPS,
		r.LegacyP50.Round(time.Microsecond), r.LegacyP99.Round(time.Microsecond), "-")
	fmt.Printf("%12s  %12.0f  %10v  %10v  %10d\n", "coalesced", r.CoalescedOpsPS,
		r.CoalescedP50.Round(time.Microsecond), r.CoalescedP99.Round(time.Microsecond), r.Batches)
	fmt.Printf("\n   improvement: %+.1f%% ops/s (%d ops in %d multi-op frames)\n\n",
		100*r.Improvement, r.BatchedOps, r.Batches)
	writeJSON(jsonDir, benchJSON{
		Name:         "quorum",
		OpsPS:        r.CoalescedOpsPS,
		P50Micros:    float64(r.CoalescedP50.Microseconds()),
		P99Micros:    float64(r.CoalescedP99.Microseconds()),
		LegacyOpsPS:  r.LegacyOpsPS,
		Improvement:  r.Improvement,
		LegacyP50Mic: float64(r.LegacyP50.Microseconds()),
		LegacyP99Mic: float64(r.LegacyP99.Microseconds()),
		Batches:      r.Batches,
		BatchedOps:   r.BatchedOps,
	})
}

// traceOverhead measures the span layer's cost on the coalesced quorum
// workload at three sampling rates. The acceptance gate is on default
// sampling: within 3% of tracing-off throughput.
func traceOverhead(quick bool, jsonDir string) {
	clients, ops, rounds := 48, 4000, 3
	if quick {
		clients, ops, rounds = 32, 1200, 2
	}
	fmt.Println("== C6: distributed-tracing overhead on the quorum workload (A/B/C) ==")
	fmt.Println("   (same 3-node coalesced quorum workload as C4, run at three sampling")
	fmt.Println("    rates with rounds interleaved in rotating order so drift cancels;")
	fmt.Println("    unsampled ops must stay allocation-free, so 1-in-64 should be noise)")
	fmt.Println()
	r := experiments.QuorumTraceAB(3, clients, ops, rounds)
	fmt.Printf("%12s  %12s  %10s  %10s  %10s  %10s\n", "Sampling", "ops/s", "P50", "P99", "Spans", "vs off")
	arm := func(name string, a experiments.QuorumTraceArm, overhead float64, gated string) {
		fmt.Printf("%12s  %12.0f  %10v  %10v  %10d  %9.1f%%%s\n", name, a.OpsPS,
			a.P50.Round(time.Microsecond), a.P99.Round(time.Microsecond), a.Spans, 100*overhead, gated)
	}
	arm("off", r.Off, 0, "")
	gated := "  (gate <=3%)"
	arm("1-in-64", r.Sampled, r.SampledOverhead, gated)
	arm("always", r.Always, r.AlwaysOverhead, "")
	rps := func(name string, a experiments.QuorumTraceArm) {
		fmt.Printf("   per-round ops/s %-8s", name)
		for _, ps := range a.RoundPS {
			fmt.Printf(" %8.0f", ps)
		}
		fmt.Println()
	}
	rps("off:", r.Off)
	rps("1-in-64:", r.Sampled)
	rps("always:", r.Always)
	fmt.Println()
	writeJSON(jsonDir, benchJSON{
		Name:         "trace",
		OpsPS:        r.Sampled.OpsPS,
		P50Micros:    float64(r.Sampled.P50.Microseconds()),
		P99Micros:    float64(r.Sampled.P99.Microseconds()),
		LegacyOpsPS:  r.Off.OpsPS,
		Improvement:  -r.SampledOverhead,
		LegacyP50Mic: float64(r.Off.P50.Microseconds()),
		LegacyP99Mic: float64(r.Off.P99.Microseconds()),
	})
}

func million(quick bool, jsonDir, gate string) {
	keys, ops, rate := 1_000_000, 30_000, 1_500
	if quick {
		keys, ops, rate = 100_000, 6_000, 1_500
	}
	fmt.Println("== C5: sharded store under a large keyspace (open loop) ==")
	fmt.Printf("   (%d keys preloaded per replica, %d ops issued at %d ops/s against the\n", keys, ops, rate)
	fmt.Println("    full keyspace; open-loop, so latencies include queueing)")
	fmt.Println()
	r := experiments.MillionKV(keys, ops, rate)
	fmt.Printf("   done=%d failed=%d  ops/s=%.0f  P50=%v P99=%v  allocs/op=%.0f\n",
		r.Done, r.Failed, r.OpsPS, r.P50.Round(time.Microsecond), r.P99.Round(time.Microsecond), r.AllocsPerOp)
	fmt.Printf("   heap: %.1f MiB -> %.1f MiB   shards: %d/%d non-empty, %d..%d keys (store total %d)\n\n",
		r.HeapBeforeMB, r.HeapAfterMB, r.NonEmptyShards, 16, r.MinShardKeys, r.MaxShardKeys, r.ShardKeys)
	rec := benchJSON{
		Name:           "million",
		OpsPS:          r.OpsPS,
		P50Micros:      float64(r.P50.Microseconds()),
		P99Micros:      float64(r.P99.Microseconds()),
		AllocsPerOp:    r.AllocsPerOp,
		Keys:           r.Keys,
		Failed:         r.Failed,
		HeapBeforeMB:   r.HeapBeforeMB,
		HeapAfterMB:    r.HeapAfterMB,
		NonEmptyShards: r.NonEmptyShards,
		MinShardKeys:   r.MinShardKeys,
		MaxShardKeys:   r.MaxShardKeys,
	}
	writeJSON(jsonDir, rec)
	if gate != "" {
		gateMillion(gate, rec)
	}
}

// wal runs the durability A/B: the same write-heavy closed-loop workload
// against the in-memory store and against the per-shard WAL under each
// sync policy, on a real loopback cluster with framed per-message codecs.
func wal(quick bool, jsonDir, gate string) {
	clients, ops, rounds := 48, 4000, 3
	if quick {
		clients, ops, rounds = 32, 1200, 2
	}
	fmt.Println("== C7: per-shard WAL durability cost (A/B across sync policies) ==")
	fmt.Println("   (3 nodes at replication degree 3, write-heavy closed loop; every")
	fmt.Println("    acked put is WAL-appended on all replicas before the ack, so the")
	fmt.Println("    arms price the append alone (never), group commit (interval, 2ms)")
	fmt.Println("    and fsync-per-append (always) against no durability at all (mem);")
	fmt.Println("    rounds rotate arm order so machine drift cancels)")
	fmt.Println()
	r, err := experiments.WALBench(clients, ops, rounds, "")
	if err != nil {
		fmt.Fprintf(os.Stderr, "catsbench: wal: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%10s  %12s  %10s  %10s  %12s  %12s  %10s\n",
		"Policy", "ops/s", "P50", "P99", "WAL appends", "WAL MiB", "fsyncs")
	var memPS, alwaysPS float64
	var alwaysArm experiments.WALBenchArm
	for _, a := range r.Arms {
		fmt.Printf("%10s  %12.0f  %10v  %10v  %12d  %12.1f  %10d\n",
			a.Policy, a.OpsPS, a.P50.Round(time.Microsecond), a.P99.Round(time.Microsecond),
			a.WALAppends, float64(a.WALBytes)/(1<<20), a.WALSyncs)
		switch a.Policy {
		case "mem":
			memPS = a.OpsPS
		case "always":
			alwaysPS = a.OpsPS
			alwaysArm = a
		}
	}
	fmt.Printf("\n   durability cost: always %.1f%%, interval %.1f%% (vs mem)\n\n",
		100*r.DurabilityCost, 100*r.IntervalCost)
	writeJSON(jsonDir, benchJSON{
		Name:        "wal",
		OpsPS:       alwaysPS, // the gated number: durability-on throughput
		P50Micros:   float64(alwaysArm.P50.Microseconds()),
		P99Micros:   float64(alwaysArm.P99.Microseconds()),
		LegacyOpsPS: memPS,
		Improvement: -r.DurabilityCost,
	})
	if gate != "" {
		gateWAL(gate, alwaysPS, alwaysArm)
	}
}

// hedge runs the gray-replica tail-latency A/B: the same pulsed-straggler
// workload in virtual time with hedged quorum phases off vs on. Latencies
// are virtual, so the profile is deterministic per seed and
// machine-independent — the baseline comparison is exact, not a noisy
// wall-clock gate.
func hedge(seed int64, jsonDir, gate string) {
	fmt.Println("== C8: hedged quorum phases vs a gray-failing replica (A/B) ==")
	fmt.Println("   (2-node cluster, every replica group is both nodes: pulsing the")
	fmt.Println("    non-coordinator slow stalls each phase at quorum-minus-one, which")
	fmt.Println("    is the hedge trigger; virtual-time latencies, deterministic per seed)")
	fmt.Println()
	r := experiments.HedgeBench(seed, experiments.HedgeBenchConfig{})
	fmt.Printf("%10s  %8s  %12s  %12s  %12s\n", "Hedging", "Ops", "P50", "P99", "Max")
	fmt.Printf("%10s  %8d  %12v  %12v  %12v\n", "off", r.Off.Ops,
		r.Off.P50.Round(time.Microsecond), r.Off.P99.Round(time.Microsecond), r.Off.Max.Round(time.Microsecond))
	fmt.Printf("%10s  %8d  %12v  %12v  %12v\n", "on", r.On.Ops,
		r.On.P50.Round(time.Microsecond), r.On.P99.Round(time.Microsecond), r.On.Max.Round(time.Microsecond))
	fmt.Printf("\n   hedges=%d wins=%d  p99 improvement: %.1fx\n\n", r.Hedges, r.HedgeWins, r.P99Improvement)
	writeJSON(jsonDir, benchJSON{
		Name:         "hedge",
		P50Micros:    float64(r.On.P50.Microseconds()),
		P99Micros:    float64(r.On.P99.Microseconds()),
		LegacyP50Mic: float64(r.Off.P50.Microseconds()),
		LegacyP99Mic: float64(r.Off.P99.Microseconds()),
		Improvement:  r.P99Improvement,
		Hedges:       r.Hedges,
		HedgeWins:    r.HedgeWins,
	})
	if gate != "" {
		gateHedge(gate, r)
	}
}

// gateHedge fails the run when hedging is inert (no hedges fired — the
// benchmark would compare two identical arms and prove nothing), when the
// hedged arm no longer beats the unhedged tail at all, or when the p99
// improvement falls below 75% of the checked-in baseline's.
func gateHedge(baselinePath string, r experiments.HedgeBenchResult) {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "catsbench: hedge gate baseline: %v\n", err)
		os.Exit(1)
	}
	var base benchJSON
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "catsbench: hedge gate baseline: %v\n", err)
		os.Exit(1)
	}
	floor := 0.75 * base.Improvement
	fmt.Printf("   hedge gate: measured %.1fx p99 improvement vs baseline %.1fx (floor %.1fx)\n",
		r.P99Improvement, base.Improvement, floor)
	if r.Hedges == 0 || r.HedgeWins == 0 {
		fmt.Fprintln(os.Stderr, "catsbench: hedge gate FAIL: no hedges fired — the A/B is inert")
		os.Exit(1)
	}
	if r.On.Failed > 0 || r.Off.Failed > 0 {
		fmt.Fprintf(os.Stderr, "catsbench: hedge gate FAIL: measured ops failed (off=%d on=%d)\n", r.Off.Failed, r.On.Failed)
		os.Exit(1)
	}
	if r.On.P99 >= r.Off.P99 {
		fmt.Fprintf(os.Stderr, "catsbench: hedge gate FAIL: hedging no longer improves p99 (off=%v on=%v)\n", r.Off.P99, r.On.P99)
		os.Exit(1)
	}
	if r.P99Improvement < floor {
		fmt.Fprintf(os.Stderr, "catsbench: hedge gate FAIL: p99 improvement %.1fx below floor %.1fx\n", r.P99Improvement, floor)
		os.Exit(1)
	}
	fmt.Println("   hedge gate: PASS")
}

// gateWAL fails the run when durability-on (sync=always) throughput
// regresses more than 10% below the checked-in baseline, or when the
// run's WAL activity looks inert.
func gateWAL(baselinePath string, alwaysPS float64, arm experiments.WALBenchArm) {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "catsbench: wal gate baseline: %v\n", err)
		os.Exit(1)
	}
	var base benchJSON
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "catsbench: wal gate baseline: %v\n", err)
		os.Exit(1)
	}
	floor := 0.9 * base.OpsPS
	fmt.Printf("   wal gate: measured %.0f ops/s (sync=always) vs baseline %.0f (floor %.0f)\n",
		alwaysPS, base.OpsPS, floor)
	if arm.WALAppends == 0 || arm.WALSyncs == 0 {
		fmt.Fprintln(os.Stderr, "catsbench: wal gate FAIL: sync=always arm recorded no WAL activity")
		os.Exit(1)
	}
	if alwaysPS < floor {
		fmt.Fprintf(os.Stderr, "catsbench: wal gate FAIL: durability-on ops/s regressed >10%% (measured %.0f < floor %.0f)\n",
			alwaysPS, floor)
		os.Exit(1)
	}
	fmt.Println("   wal gate: PASS")
}

// gateMillion fails the run when the measured million-profile throughput
// regresses more than 10% below the checked-in baseline, or when the load
// did not complete cleanly.
func gateMillion(baselinePath string, rec benchJSON) {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "catsbench: gate baseline: %v\n", err)
		os.Exit(1)
	}
	var base benchJSON
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "catsbench: gate baseline: %v\n", err)
		os.Exit(1)
	}
	floor := 0.9 * base.OpsPS
	fmt.Printf("   gate: measured %.0f ops/s vs baseline %.0f (floor %.0f)\n", rec.OpsPS, base.OpsPS, floor)
	if rec.Failed > 0 {
		fmt.Fprintf(os.Stderr, "catsbench: gate FAIL: %d operations failed\n", rec.Failed)
		os.Exit(1)
	}
	if rec.OpsPS < floor {
		fmt.Fprintf(os.Stderr, "catsbench: gate FAIL: ops/s regressed >10%% (measured %.0f < floor %.0f)\n", rec.OpsPS, floor)
		os.Exit(1)
	}
	if rec.NonEmptyShards == 0 {
		fmt.Fprintln(os.Stderr, "catsbench: gate FAIL: no per-shard occupancy exported")
		os.Exit(1)
	}
	fmt.Println("   gate: PASS")
}

// codecJSON is the machine-readable record for the wire-codec A/B: the
// full four-arm result plus a name for the BENCH_<name>.json convention.
type codecJSON struct {
	Name string `json:"name"`
	experiments.CodecBenchResult
}

func codecBench(quick bool, jsonDir, gate string) {
	clients, ops, rounds := 32, 3000, 3
	if quick {
		clients, ops, rounds = 16, 800, 2
	}
	fmt.Println("== C9: wire codec A/B — gob+zlib vs zero-copy binary (quorum workload) ==")
	fmt.Println("   (same closed-loop put/get load per arm; loopback isolates codec cost,")
	fmt.Println("    TCP runs the full handshake-negotiated socket path; rounds interleave")
	fmt.Println("    codec order and a warm-up round per transport is discarded)")
	fmt.Println()
	r := experiments.CodecAB(3, clients, ops, rounds)
	fmt.Printf("%10s  %10s  %10s  %12s  %12s  %14s  %10s\n",
		"Transport", "Codec", "Ops/s", "P50", "P99", "BinaryFrames", "Fallbacks")
	for _, a := range r.Arms {
		fmt.Printf("%10s  %10s  %10.0f  %12v  %12v  %14d  %10d\n",
			a.Transport, a.Codec, a.OpsPS,
			a.P50.Round(time.Microsecond), a.P99.Round(time.Microsecond),
			a.BinaryEncoded, a.CodecFallbacks)
	}
	fmt.Printf("\n   loopback: binary vs gob+zlib %+.1f%%   tcp: %+.1f%%\n\n",
		100*r.LoopbackImprovement, 100*r.TCPImprovement)

	if jsonDir != "" {
		if err := os.MkdirAll(jsonDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "catsbench: json dir: %v\n", err)
			os.Exit(1)
		}
		path := filepath.Join(jsonDir, "BENCH_codec.json")
		b, _ := json.MarshalIndent(codecJSON{Name: "codec", CodecBenchResult: r}, "", "  ")
		if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "catsbench: write %s: %v\n", path, err)
			os.Exit(1)
		}
		fmt.Printf("   wrote %s\n\n", path)
	}
	if gate != "" {
		gateCodec(gate, r)
	}
}

// gateCodec fails the run when the binary codec comparison is inert (a
// binary arm encoded zero binary frames — the swap never engaged and both
// arms measured gob), when a gob arm was contaminated with binary frames,
// when binary stops beating gob+zlib on the loopback quorum workload
// (small tolerance for machine noise), or when the loopback binary
// throughput regresses more than 10% below the checked-in baseline.
func gateCodec(baselinePath string, r experiments.CodecBenchResult) {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "catsbench: codec gate baseline: %v\n", err)
		os.Exit(1)
	}
	var base codecJSON
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "catsbench: codec gate baseline: %v\n", err)
		os.Exit(1)
	}
	for _, a := range r.Arms {
		switch a.Codec {
		case "binary":
			if a.BinaryEncoded == 0 {
				fmt.Fprintf(os.Stderr, "catsbench: codec gate FAIL: %s/binary arm encoded zero binary frames — A/B inert\n", a.Transport)
				os.Exit(1)
			}
		default:
			if a.BinaryEncoded != 0 {
				fmt.Fprintf(os.Stderr, "catsbench: codec gate FAIL: %s/%s arm encoded %d binary frames — arms contaminated\n",
					a.Transport, a.Codec, a.BinaryEncoded)
				os.Exit(1)
			}
		}
		if a.FailedOps != 0 {
			fmt.Fprintf(os.Stderr, "catsbench: codec gate FAIL: %s/%s arm had %d failed ops\n", a.Transport, a.Codec, a.FailedOps)
			os.Exit(1)
		}
	}
	bin := r.Arm("loopback", "binary")
	gob := r.Arm("loopback", "gob+zlib")
	if bin == nil || gob == nil {
		fmt.Fprintln(os.Stderr, "catsbench: codec gate FAIL: loopback arms missing from result")
		os.Exit(1)
	}
	// Binary must stay at least on par with gob+zlib on the quorum
	// workload; 5% tolerance absorbs shared-runner noise without letting a
	// real inversion through.
	if bin.OpsPS < 0.95*gob.OpsPS {
		fmt.Fprintf(os.Stderr, "catsbench: codec gate FAIL: loopback binary %.0f ops/s fell below gob+zlib %.0f\n",
			bin.OpsPS, gob.OpsPS)
		os.Exit(1)
	}
	var baseBin float64
	if b := base.Arm("loopback", "binary"); b != nil {
		baseBin = b.OpsPS
	}
	floor := 0.9 * baseBin
	fmt.Printf("   codec gate: loopback binary %.0f ops/s vs baseline %.0f (floor %.0f), gob+zlib %.0f\n",
		bin.OpsPS, baseBin, floor, gob.OpsPS)
	if baseBin > 0 && bin.OpsPS < floor {
		fmt.Fprintf(os.Stderr, "catsbench: codec gate FAIL: loopback binary ops/s regressed >10%% (measured %.0f < floor %.0f)\n",
			bin.OpsPS, floor)
		os.Exit(1)
	}
	fmt.Println("   codec gate: PASS")
}
